"""Session-oriented public API: the :class:`Database` facade.

A :class:`Database` wraps one incomplete :class:`~repro.data.instance.Instance`
together with a default semantics and turns the paper's
analyze-then-route insight into a *prepared-query* workflow:

>>> from repro.session import Database
>>> from repro.data.values import Null
>>> db = Database({"R": [(1, Null("x"))], "S": [(Null("x"), 4)]}, semantics="owa")
>>> q = db.query("exists z (R(x, z) & S(z, y))", vars=("x", "y"))
>>> sorted(q.evaluate().answers)
[(1, 4)]
>>> db.explain(q).backend
'columnar'

Preparing a query pays for the Figure-1 analyzer, the parse, the query
schema and the constant pool exactly once; subsequent evaluations reuse
the cached :class:`~repro.core.plan.Plan`.

The session is **long-lived and mutable**: :meth:`Database.insert`,
:meth:`Database.delete` and :meth:`Database.apply_delta` change the
instance *incrementally* — the untouched relations keep their frozen
row sets, hash indexes (:func:`repro.data.indexes.derive_context`) and
dictionary-encoded columns (:func:`repro.data.dictionary.derive_columnar`),
and invalidation is tracked by **per-relation generation counters**
instead of one global epoch.  A prepared query's cached plan survives
writes to relations it never mentions, and a bounded **result cache**
(keyed by query value × backend × the generations of the relations the
compiled plan actually reads) turns repeated evaluation into a lookup
whenever the touched relations are disjoint from what the plan reads —
sound because a domain-independent compiled plan is a pure function of
those relations (``CompiledQuery.adom_dependent``), which is exactly
the paper's naive-evaluation determinacy made operational.

All public entry points are thread-safe: state transitions happen under
one reentrant lock, readers evaluate against immutable instance
snapshots outside it, and cache insertions are keyed by the generations
observed at snapshot time, so a concurrent writer can never tear a
result (:mod:`repro.server` multiplexes many client sessions over one
``Database`` this way).

Module-level functions are called through their module objects
(``_certain.default_pool`` and friends) so tests and instrumentation
can monkeypatch the defining module and observe every call.
"""

from __future__ import annotations

import threading
from importlib import import_module
from time import monotonic, perf_counter, time
from typing import Callable, Hashable, Iterable, Mapping, Sequence

from repro.core import analyzer as _analyzer
from repro.core import backends as _backends
from repro.core import certain as _certain
from repro.core import engine as _engine
from repro.core import plan as _plan
from repro.core.engine import EvalResult
from repro.core.plan import Plan
from repro.data import dictionary as _dictionary
from repro.data import indexes as _indexes
from repro.data.instance import Instance
from repro.data.schema import Schema
from repro.logic import compile as _compile
from repro.logic.ast import Formula
from repro.logic.parser import parse
from repro.logic.queries import Query
from repro.logic.transform import free_vars
from repro.semantics import get_semantics
from repro.semantics.base import Semantics
from repro.storage.snapshot import SnapshotState
from repro.storage.store import RecoveryInfo, Storage, encode_delta_record

# repro.homs re-exports a `core` *function* that shadows the submodule
# attribute, so the module object must come from the import system.
_homs_core = import_module("repro.homs.core")

__all__ = ["Database", "DegradedError", "PreparedQuery", "as_query"]


class DegradedError(RuntimeError):
    """The session refuses mutations: a durability write failed.

    Raised *instead of* acknowledging a write whenever the journal
    cannot make it durable (failed append, failed fsync, failed
    snapshot publish) — the caller must treat the write as **not
    applied durably**, and every subsequent mutation is refused with
    this error until an operator :meth:`Database.checkpoint` succeeds
    (typically after the disk recovers).  Reads keep working: degraded
    mode is read-only serving, not a crash.

    The two entry paths differ in what the failed write means:

    * **append failed** — the delta never published; the write is
      definitively absent from the session and from recovery;
    * **fsync failed** — the delta already published in memory (group
      commit cannot take it back), so the write is *indeterminate*: it
      is visible to reads now and becomes durable at the healing
      checkpoint, but a crash before that checkpoint loses it.  Either
      way the caller was told "not acknowledged", which stays truthful.
    """


def as_query(source, vars=None, name: str | None = None) -> Query:
    """Normalise a query source (text, formula, or Query) into a Query.

    The single source of truth for the default answer-column convention
    (free variables in name order) shared by the session API and the CLI.
    """
    if isinstance(source, Query):
        if vars is not None:
            raise ValueError("vars cannot be overridden for an already-built Query")
        if name is not None:
            raise ValueError("name cannot be overridden for an already-built Query")
        return source
    formula = parse(source) if isinstance(source, str) else source
    if not isinstance(formula, Formula):
        raise TypeError(
            f"cannot prepare {source!r}: expected query text, a Formula, or a Query"
        )
    if vars is None:
        head = tuple(sorted(free_vars(formula), key=lambda v: v.name))
    else:
        head = tuple(vars)
    return Query(formula, head, name=name or "Q")


class PreparedQuery:
    """A query bound to a :class:`Database`, with its analysis cached.

    Caches, computed at most once per (query, semantics):

    * the parsed :class:`~repro.logic.queries.Query` (AST + answer tuple),
    * the analyzer verdict (Figure 1),
    * the query schema (relations/arities the query mentions);

    per *relevant* instance state:

    * the :class:`~repro.core.plan.Plan` per requested mode — invalidated
      only when a relation the query mentions changes (or, for verdicts
      that hinge on the core check, on any write at all);

    and at most once per instance generation:

    * the constant pool for bounded enumeration (it reflects every
      constant of the instance, so any write may change it).
    """

    __slots__ = (
        "_db",
        "query",
        "semantics",
        "_verdict",
        "_schema",
        "_pool",
        "_pool_generation",
        "_plans",
        "_plans_key",
    )

    def __init__(self, db: "Database", query: Query, semantics: Semantics):
        self._db = db
        self.query = query
        self.semantics = semantics
        self._verdict = None
        self._schema: Schema | None = None
        self._pool: tuple[Hashable, ...] | None = None
        self._pool_generation = -1
        self._plans: dict[str, Plan] = {}
        self._plans_key: tuple | None = None

    # ------------------------------------------------------------------
    # cached analysis
    # ------------------------------------------------------------------

    @property
    def database(self) -> "Database":
        return self._db

    @property
    def verdict(self):
        """The Figure-1 verdict for this (query, semantics) pair (cached)."""
        if self._verdict is None:
            self._verdict = _analyzer.analyze(self.query, self.semantics)
        return self._verdict

    @property
    def schema(self) -> Schema:
        """The schema mentioned by the query (cached)."""
        if self._schema is None:
            self._schema = _certain.query_schema(self.query)
        return self._schema

    @property
    def pool(self) -> tuple[Hashable, ...]:
        """The enumeration pool for the current instance (cached per generation).

        Returned as a tuple: the cache is shared across evaluations, so
        handing out a mutable alias would let callers corrupt it.  Built
        under the session lock so a concurrent writer cannot slip a
        generation bump between the pool build and its stamp (which
        would mark a stale pool current).
        """
        with self._db._lock:
            if self._pool_generation != self._db.generation:
                self._pool = tuple(
                    _certain.default_pool(self._db.instance, self.query)
                )
                self._pool_generation = self._db.generation
            return self._pool

    def _plan_key(self) -> tuple:
        """What a cached plan depends on, as a comparable value.

        The per-relation generations of the relations the query mentions,
        the session epoch (``replace``/``extra_facts``/``workers``
        assignments re-plan everything), and — only when the verdict is
        positive *over cores*, so routing hinges on a whole-instance
        property — the global mutation counter.
        """
        db = self._db
        gens = tuple(db._rel_gens.get(name, 0) for name in self.schema.relations)
        core_gen = db._generation if self.verdict.over_cores_only else -1
        return (db._epoch, gens, core_gen)

    def plan(self, mode: str = "auto") -> Plan:
        """The evaluation plan (cached per relevant instance state and mode).

        Planned under the session lock: the key computation, the plan
        build and the cache store must see one consistent instance
        state (an unlocked check-then-act could stamp a plan built from
        the pre-write instance with the post-write key).
        """
        with self._db._lock:
            key = self._plan_key()
            if self._plans_key != key:
                self._plans.clear()
                self._plans_key = key
            cached = self._plans.get(mode)
            if cached is None:
                # no pool is passed: make_plan derives the cost hint
                # arithmetically, and the pool is only materialised at
                # evaluation time for backends that actually read it
                cached = _plan.make_plan(
                    self.query,
                    self._db.instance,
                    self.semantics,
                    mode,
                    verdict=self.verdict,
                    core_check=self._db.instance_is_core,
                    extra_facts=self._db.extra_facts,
                    workers=self._db.workers,
                )
                self._plans[mode] = cached
            return cached

    explain = plan

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------

    def evaluate(self, mode: str = "auto") -> EvalResult:
        """Evaluate against the session's current instance via the cached plan.

        Planning happens under the session lock so the snapshot
        (instance, plan, pool, result-cache key) is consistent — note a
        *first-time* plan may pay the core check or a pool build there;
        warm paths are dictionary lookups.  The backend itself runs
        outside the lock against the immutable snapshot, so concurrent
        readers execute in parallel and a cache hit skips execution
        entirely (``stats["result_cache"] == "hit"``).
        """
        db = self._db
        start = perf_counter()
        with db._lock:
            instance = db._instance
            plan = self.plan(mode)
            backend = _backends.get_backend(plan.backend)
            key = db._result_key(self, plan)
            cached = db._result_get(key)
            # a cache hit never enumerates, so the pool is not even built
            pool = self.pool if backend.uses_pool and cached is None else None
            stats = {
                # the pool actually materialised for this run (0 = none:
                # the backend does not enumerate)
                "pool_size": len(pool) if pool is not None else 0,
                "generation": db._generation,
                **db._cache_stats_fields(key, cached),
            }
            worker_pool = db._worker_pool_for(plan)
            extra_facts = db._extra_facts
            limit = db.limit
            workers = db._workers
        stats["planning_s"] = perf_counter() - start
        if cached is not None:
            return db._hit_result(plan, cached, stats)
        result = _engine.execute_plan(
            plan,
            self.query,
            instance,
            self.semantics,
            pool=pool,
            extra_facts=extra_facts,
            limit=limit,
            workers=workers,
            worker_pool=worker_pool,
            stats=stats,
        )
        if key is not None:
            db._result_put(key, result.answers)
        return result

    def __call__(self, mode: str = "auto") -> EvalResult:
        return self.evaluate(mode)

    def __repr__(self) -> str:
        return (
            f"PreparedQuery({self.query!r}, semantics={self.semantics.key!r}, "
            f"db_generation={self._db.generation})"
        )


class Database:
    """A stateful, thread-safe session over one incomplete instance.

    Parameters
    ----------
    instance:
        the incomplete database — an :class:`Instance` or a plain
        ``{relation: rows}`` mapping (defaults to the empty instance);
    semantics:
        default semantics for prepared queries (key or object);
    extra_facts / limit:
        enumeration knobs forwarded to the oracle backends;
    workers:
        ceiling on worker processes for the oracle's parallel world
        sharding (0/None = serial; the planner's cost model still
        routes small valuation spaces to the serial path).  Sessions
        that go parallel keep one persistent
        :class:`~repro.core.parallel.OracleWorkerPool` alive across
        requests instead of re-forking per call; :meth:`close` (or a
        ``with`` block) releases it;
    prepared_cache_size:
        bound on the LRU intern table for textual queries;
    result_cache_size:
        bound on the LRU result cache (0 disables result caching);
    path:
        a data directory making the session **durable**
        (:mod:`repro.storage`).  Opening recovers the previous state —
        latest snapshot plus write-ahead-log tail — bit-identically
        (rows *and* generation counters); afterwards every effective
        mutation is journaled before it publishes and acknowledged only
        once fsync'd, so acknowledged writes survive ``kill -9``.
        ``instance`` may seed a *fresh* data directory; passing both an
        instance and a directory that already holds state is an error
        (recovered state wins, silently dropping the seed would lie);
    fsync:
        ``False`` keeps journaling but skips the per-commit fsync —
        crash durability becomes best-effort (the benchmark harness
        uses this to price durability itself);
    wal_max_bytes / wal_max_age_s:
        compaction triggers: after an acknowledged write whose log has
        grown past ``wal_max_bytes`` (or is older than
        ``wal_max_age_s`` seconds, when set), a fresh snapshot is
        written and the log truncated (:meth:`checkpoint`);
    faults:
        a :class:`repro.faults.FaultRegistry` (or spec string) for
        deterministic fault injection into the storage layer; ``None``
        uses the process-global registry armed via the
        ``REPRO_FAILPOINTS`` environment variable.

    When a durability write fails (injected or real), the session
    flips to **degraded read-only mode**: the failed write is *never*
    acknowledged, subsequent mutations raise :class:`DegradedError`,
    reads keep serving, and a successful :meth:`checkpoint` (operator-
    triggered once the disk recovers) restores writability.

    Mutation is **incremental**: :meth:`insert`, :meth:`delete` and
    :meth:`apply_delta` derive the next instance value via
    :meth:`Instance.with_delta`, carry the untouched relations' hash
    indexes over, and bump only the *touched relations'* generation
    counters — so prepared plans and cached results survive unrelated
    writes.  :meth:`replace` swaps the whole instance and invalidates
    everything (the session epoch).
    """

    def __init__(
        self,
        instance: Instance | Mapping[str, Iterable[tuple]] | None = None,
        semantics: Semantics | str = "cwa",
        *,
        extra_facts: int | None = None,
        limit: int = 500_000,
        workers: int | None = None,
        prepared_cache_size: int = 256,
        result_cache_size: int = 1024,
        path: str | None = None,
        fsync: bool = True,
        wal_max_bytes: int = 4 * 1024 * 1024,
        wal_max_age_s: float | None = None,
        faults=None,
    ):
        seeded = instance is not None
        if instance is None:
            instance = Instance.empty()
        elif not isinstance(instance, Instance):
            instance = Instance(instance)
        self._storage: Storage | None = None
        recovered: SnapshotState | None = None
        #: health state machine: "ok" → "degraded" on a durability
        #: failure, back to "ok" on the next successful checkpoint
        self._health_state = "ok"
        self._health_reason: str | None = None
        self._health_since: float | None = None
        self._degraded_count = 0
        if path is not None:
            self._storage = Storage(
                path,
                fsync=fsync,
                wal_max_bytes=wal_max_bytes,
                wal_max_age_s=wal_max_age_s,
                faults=faults,
            )
            recovered = self._storage.open()
            info = self._storage.recovery
            if info.had_snapshot or info.wal_records or info.wal_skipped:
                if seeded:
                    self._storage.close()  # do not leak the open WAL handle
                    raise ValueError(
                        f"data directory {path!r} already holds a persisted session; "
                        f"refusing to overwrite it with the provided instance "
                        f"(recover without an instance, or choose a fresh directory)"
                    )
                instance = recovered.instance
        self._instance = instance
        self._semantics = (
            get_semantics(semantics) if isinstance(semantics, str) else semantics
        )
        self._extra_facts = extra_facts
        self._workers = workers
        self.limit = limit
        #: total mutation counter (every effective write bumps it);
        #: durable sessions recover it from the snapshot + WAL replay
        self._generation = recovered.generation if recovered is not None else 0
        #: structural epoch: replace()/knob assignments invalidate everything
        #: (process-local — caches die with the process, so not persisted)
        self._epoch = 0
        #: per-relation write counters — the selective-invalidation keys
        self._rel_gens: dict[str, int] = (
            dict(recovered.rel_gens) if recovered is not None else {}
        )
        self._core_flag: bool | None = None
        self._lock = threading.RLock()
        # signalled on every generation change; staleness-bounded reads
        # on replicas block on it (wait_for_generation)
        self._gen_cond = threading.Condition(self._lock)
        # replication/observation hooks, notified under the lock so event
        # order matches publish order (see add_listener)
        self._listeners: list[Callable[[dict], None]] = []
        # LRU intern table for textual queries, bounded so a long-lived
        # session serving ad-hoc query texts cannot grow without limit
        self._prepared: dict[tuple, PreparedQuery] = {}
        self._prepared_max = max(1, prepared_cache_size)
        # memo for the batch pool: (generation, extra constants) → pool
        # (a tuple, so backends cannot corrupt the cache in place)
        self._batch_pool_key: tuple | None = None
        self._batch_pool: tuple[Hashable, ...] | None = None
        # generation-keyed LRU result cache (see _result_key)
        self._results: dict[tuple, frozenset] = {}
        self._results_max = max(0, result_cache_size)
        self._result_stats = {
            "hits": 0,
            "misses": 0,
            "uncacheable": 0,
            "evictions": 0,
        }
        self._worker_pool = None
        if self._storage is not None and seeded:
            # a fresh data directory seeded with an instance: snapshot it
            # now, so the seed survives a restart with zero writes
            try:
                self.checkpoint()
            except BaseException:
                self._storage.close()  # do not leak the open WAL handle
                raise

    # ------------------------------------------------------------------
    # state
    # ------------------------------------------------------------------

    @property
    def instance(self) -> Instance:
        """The current incomplete instance."""
        return self._instance

    @property
    def semantics(self) -> Semantics:
        """The session's default semantics."""
        return self._semantics

    @property
    def generation(self) -> int:
        """Total effective-mutation counter (every write bumps it).

        Selective invalidation does **not** key on this — see
        :meth:`rel_generation` — but whole-instance caches (the
        enumeration pool, the batch-pool memo) still do.
        """
        return self._generation

    def rel_generation(self, relation: str) -> int:
        """How many effective writes relation ``relation`` has seen."""
        return self._rel_gens.get(relation, 0)

    @property
    def extra_facts(self) -> int | None:
        """Bound on extension facts for the oracle backends.

        Plans depend on this knob (it decides whether OWA/WCWA
        enumeration is exact), so assigning a new value invalidates
        the cached plans.
        """
        return self._extra_facts

    @extra_facts.setter
    def extra_facts(self, value: int | None) -> None:
        with self._lock:
            if value != self._extra_facts:
                self._extra_facts = value
                self._generation += 1
                self._epoch += 1
                self._notify({"type": "reset", "generation": self._generation})
                self._gen_cond.notify_all()

    @property
    def workers(self) -> int | None:
        """Ceiling on oracle worker processes (0/None = serial).

        Plans record the sharding decision, so assigning a new value
        invalidates the cached plans (and releases any persistent
        worker pool sized for the old ceiling).
        """
        return self._workers

    @workers.setter
    def workers(self, value: int | None) -> None:
        with self._lock:
            if value == self._workers:
                return
            self._workers = value
            self._generation += 1
            self._epoch += 1
            self._notify({"type": "reset", "generation": self._generation})
            self._gen_cond.notify_all()
            pool, self._worker_pool = self._worker_pool, None
        if pool is not None:
            pool.close()

    def instance_is_core(self) -> bool:
        """Is the current instance a core?  Cached until the next mutation."""
        if self._core_flag is None:
            if self._instance.is_complete():
                # every homomorphism fixing constants is the identity on
                # a null-free instance, so it is trivially a core
                self._core_flag = True
            else:
                self._core_flag = _homs_core.is_core(self._instance)
        return self._core_flag

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------

    def apply_delta(
        self,
        adds: Mapping[str, Iterable[Sequence[Hashable]]] | None = None,
        removes: Mapping[str, Iterable[Sequence[Hashable]]] | None = None,
    ) -> int:
        """Apply a batch of insertions/deletions atomically.

        Returns the number of facts that actually changed.  The whole
        delta lands as **one** state transition: concurrent readers see
        either the old or the new instance, never a half-applied mix.
        Null-carrying rows are welcome — a new null simply widens the
        valuation space the oracle enumerates.

        Incremental: untouched relations keep their frozen row sets and
        every hash index ever built for them; touched relations get
        their cached indexes patched copy-on-write
        (:func:`repro.data.indexes.derive_context`), and only their
        generation counters bump — cached plans and results of queries
        that do not read them stay valid.

        Durable sessions journal first: the effective delta is appended
        to the write-ahead log *before* the new instance publishes, and
        the call returns only once the record is fsync'd (group-commit:
        concurrent writers share one fsync) — so a delta this method
        has acknowledged survives ``kill -9``.  When the log outgrows
        its size/age budget the write also triggers a
        :meth:`checkpoint`.
        """
        offset: int | None = None
        with self._lock:
            if self._health_state == "degraded":
                raise DegradedError(
                    f"session is degraded ({self._health_reason}); mutations are "
                    f"refused until a checkpoint succeeds"
                )
            storage = self._storage
            new, changes = self._instance.with_delta(adds, removes)
            if not changes:
                return 0
            # one source of truth for the post-write counters: the same
            # dict is journaled and then published, so the WAL can never
            # diverge from what recovery must restore
            new_rel_gens = {n: self._rel_gens.get(n, 0) + 1 for n in changes}
            record: dict | None = None
            if storage is not None or self._listeners:
                # one wire-format record serves both the journal and the
                # replication feed, so neither can drift from the other
                record = encode_delta_record(changes, self._generation + 1, new_rel_gens)
            if storage is not None:
                # journal before publish; encoding errors raise here,
                # before any in-memory state has changed
                try:
                    offset = storage.append_record(record)
                except OSError as err:
                    # nothing published: the write is definitively absent
                    self._degrade(f"wal append failed: {err}")
                    raise DegradedError(
                        f"write not acknowledged: wal append failed ({err}); "
                        f"session is degraded (read-only) until a checkpoint succeeds"
                    ) from err
            _indexes.derive_context(self._instance, new, changes)
            _dictionary.derive_columnar(self._instance, new, changes)
            self._instance = new
            self._generation += 1
            self._rel_gens.update(new_rel_gens)
            self._core_flag = None
            count = sum(len(added) + len(removed) for added, removed in changes.values())
            if record is not None and self._listeners:
                self._notify({"type": "delta", "record": record})
            self._gen_cond.notify_all()
        if offset is not None:
            try:
                storage.sync(offset)  # the durability point, outside the lock
            except OSError as err:
                # already published — group commit cannot take it back, so
                # the in-memory timeline stays truth and the write becomes
                # durable at the healing checkpoint; but the *caller* gets
                # a typed refusal, never an ack for a non-durable write
                self._degrade(f"wal fsync failed: {err}")
                raise DegradedError(
                    f"write not acknowledged: wal fsync failed ({err}); "
                    f"session is degraded (read-only) until a checkpoint succeeds"
                ) from err
            if storage.should_compact():
                try:
                    self.checkpoint()
                except DegradedError:
                    # the write itself is durable and acknowledged; a
                    # failed auto-compaction degrades the session but
                    # must not turn that ack into an error
                    pass
        return count

    def insert(self, relation: str, *rows: Sequence[Hashable]) -> int:
        """Insert facts into ``relation``; returns how many were new."""
        return self.apply_delta(adds={relation: rows})

    def delete(self, relation: str, *rows: Sequence[Hashable]) -> int:
        """Delete facts from ``relation``; returns how many were present."""
        return self.apply_delta(removes={relation: rows})

    def add_fact(self, relation: str, row: Sequence[Hashable]) -> None:
        """Add one fact (no-op when already present)."""
        self.insert(relation, tuple(row))

    def remove_fact(self, relation: str, row: Sequence[Hashable]) -> None:
        """Remove one fact (no-op when absent)."""
        self.delete(relation, tuple(row))

    def replace(self, instance: Instance | Mapping[str, Iterable[tuple]]) -> None:
        """Swap in a whole new instance (invalidates every cache).

        On a durable session the swap is persisted as a fresh snapshot
        (plus log truncation) rather than a delta record — a whole-
        instance replacement is a checkpoint by definition.
        """
        if not isinstance(instance, Instance):
            instance = Instance(instance)
        with self._lock:
            if instance == self._instance:
                return
            # carry the interning dictionary across the swap: codes stay
            # stable along the whole instance chain (replace included)
            old_cols = self._instance._cols
            if old_cols is not None and instance._cols is None:
                _dictionary.columnar_context(instance, old_cols.dictionary)
            self._instance = instance
            self._generation += 1
            self._epoch += 1
            self._core_flag = None
            self._results.clear()
            # no WAL record carries this transition: replicas must resync
            self._notify({"type": "reset", "generation": self._generation})
            self._gen_cond.notify_all()
            if self._storage is not None:
                # after the notifies: the in-memory swap stands even when
                # persisting it fails (the session degrades instead)
                self._checkpoint_locked()

    # ------------------------------------------------------------------
    # durability
    # ------------------------------------------------------------------

    def _snapshot_state(self) -> SnapshotState:
        """The durable state triple (caller must hold the session lock)."""
        return SnapshotState(self._instance, self._generation, dict(self._rel_gens))

    @property
    def path(self) -> str | None:
        """The data directory of a durable session, or ``None``."""
        return str(self._storage.path) if self._storage is not None else None

    @property
    def recovery_info(self) -> RecoveryInfo | None:
        """What opening the data directory found (``None`` when memory-only).

        Carries the snapshot generation, how many WAL records were
        replayed or skipped, and how many torn trailing bytes were
        discarded — ``repro recover`` prints exactly this.
        """
        return self._storage.recovery if self._storage is not None else None

    @property
    def storage_stats(self) -> dict | None:
        """Live WAL/snapshot counters of a durable session, or ``None``."""
        return self._storage.stats if self._storage is not None else None

    def checkpoint(self) -> bool:
        """Write a fresh snapshot and truncate the write-ahead log.

        The compaction step: recovery cost goes back to "read one
        snapshot", and the log starts empty.  Runs under the session
        lock so the snapshot and the truncation see one consistent
        state.  Returns ``False`` on a memory-only session or when the
        current state is already fully snapshotted.

        Doubles as the **healing** step of degraded mode: a successful
        checkpoint proves the disk can persist the full current state
        again, so the session flips back to ``ok`` and accepts
        mutations.  A failing checkpoint raises :class:`DegradedError`
        (and keeps/puts the session in degraded mode).
        """
        if self._storage is None:
            return False
        with self._lock:
            return self._checkpoint_locked()

    def _checkpoint_locked(self) -> bool:
        """Checkpoint + health transition (caller holds the session lock)."""
        try:
            result = self._storage.checkpoint(self._snapshot_state())
        except OSError as err:
            self._degrade(f"checkpoint failed: {err}")
            raise DegradedError(
                f"checkpoint failed ({err}); session is degraded (read-only) "
                f"until a checkpoint succeeds"
            ) from err
        self._heal()
        return result

    def _degrade(self, reason: str) -> None:
        """Enter degraded read-only mode (idempotent; keeps the first reason)."""
        with self._lock:
            if self._health_state != "degraded":
                self._health_state = "degraded"
                self._health_reason = reason
                self._health_since = time()
                self._degraded_count += 1

    def _heal(self) -> None:
        """Leave degraded mode after a proven-durable checkpoint."""
        with self._lock:
            if self._health_state == "degraded":
                self._health_state = "ok"
                self._health_reason = None
                self._health_since = None

    @property
    def health(self) -> dict:
        """The session's health state machine, as one atomic reading.

        ``state`` is ``"ok"`` or ``"degraded"``; while degraded,
        ``reason`` names the durability failure that caused it and
        ``since`` is its wall-clock timestamp.  ``degraded_count``
        counts ok→degraded transitions over the session's lifetime
        (it survives healing, so monitors can spot flapping disks).
        """
        with self._lock:
            return {
                "state": self._health_state,
                "reason": self._health_reason,
                "since": self._health_since,
                "degraded_count": self._degraded_count,
            }

    # ------------------------------------------------------------------
    # replication hooks
    # ------------------------------------------------------------------

    def add_listener(self, listener: Callable[[dict], None]) -> None:
        """Register a mutation observer (the replication feed is one).

        Listeners are called **under the session lock**, so the event
        order they see is exactly the publish order: a ``delta`` event
        carries the same wire-format record the WAL journals
        (``{"g", "rg", "adds", "removes"}``), a ``reset`` event marks a
        transition no WAL record describes (:meth:`replace`, knob
        assignments, :meth:`restore`) after which the stream is no
        longer dense.  Listeners must be fast and must not re-enter the
        session's mutation API.
        """
        with self._lock:
            if listener not in self._listeners:
                self._listeners.append(listener)

    def remove_listener(self, listener: Callable[[dict], None]) -> None:
        """Unregister a mutation observer (idempotent)."""
        with self._lock:
            if listener in self._listeners:
                self._listeners.remove(listener)

    def _notify(self, event: dict) -> None:
        """Deliver one event to every listener (caller holds the lock)."""
        for listener in list(self._listeners):
            try:
                listener(event)
            except Exception:  # noqa: BLE001 - a broken observer must not fail writers
                pass

    @property
    def position(self) -> dict:
        """The applied replication position: ``{"generation", "rel_generations"}``.

        Read atomically under the lock — the two counters always belong
        to the same published state.
        """
        with self._lock:
            return {
                "generation": self._generation,
                "rel_generations": dict(self._rel_gens),
            }

    def wait_for_generation(
        self,
        generation: int | None = None,
        rel_generations: Mapping[str, int] | None = None,
        *,
        timeout: float | None = None,
    ) -> bool:
        """Block until the session's counters reach the given floor(s).

        The staleness-bounded read primitive: a replica serving a query
        with ``min_generation`` parks here until its tailer has applied
        enough of the primary's stream (or the deadline passes —
        returns ``False``, and the server turns that into a typed
        ``stale`` error).  On a primary this returns immediately unless
        the caller asks for a future generation.
        """
        floors = dict(rel_generations or {})
        deadline = None if timeout is None else monotonic() + timeout
        with self._gen_cond:
            while True:
                caught_up = (
                    generation is None or self._generation >= generation
                ) and all(self._rel_gens.get(n, 0) >= g for n, g in floors.items())
                if caught_up:
                    return True
                if deadline is None:
                    self._gen_cond.wait()
                else:
                    remaining = deadline - monotonic()
                    if remaining <= 0:
                        return False
                    self._gen_cond.wait(remaining)

    def restore(self, instance, generation: int, rel_generations: Mapping[str, int]) -> None:
        """Install replicated state **verbatim** — counters included.

        The replica-side bootstrap path: when the primary's WAL no
        longer reaches back to this session's position, the feed ships a
        full snapshot and this method makes it the session's state in
        one transition.  Unlike :meth:`replace` the counters come from
        the *primary*, so subsequent delta frames apply densely.  On a
        durable session the new state is checkpointed immediately
        (recovery must never resurrect the pre-restore timeline).
        """
        if not isinstance(instance, Instance):
            instance = Instance(instance)
        with self._lock:
            # same dictionary carry-over as replace(): restored state is
            # new content, but interned codes must stay stable
            old_cols = self._instance._cols
            if old_cols is not None and instance._cols is None:
                _dictionary.columnar_context(instance, old_cols.dictionary)
            self._instance = instance
            self._generation = int(generation)
            self._rel_gens = {
                str(name): int(gen) for name, gen in (rel_generations or {}).items()
            }
            self._epoch += 1
            self._core_flag = None
            self._results.clear()
            self._batch_pool_key = None
            self._notify({"type": "reset", "generation": self._generation})
            self._gen_cond.notify_all()
            if self._storage is not None:
                # after the notifies: the restored state is the session's
                # truth even when persisting it fails (degrade instead)
                self._checkpoint_locked()

    def raw_wal_records(self) -> list[dict]:
        """The wire-format records currently in the WAL (oldest first).

        Empty for memory-only sessions.  The replication feed seeds its
        ring buffer from this under the session lock, so the tail it
        then receives as listener events continues densely.
        """
        if self._storage is None:
            return []
        return self._storage.raw_records()

    # ------------------------------------------------------------------
    # the result cache
    # ------------------------------------------------------------------

    def _result_key(self, prepared: PreparedQuery, plan: Plan) -> tuple | None:
        """The cache key for one evaluation, or ``None`` when uncacheable.

        Delegated to the backend
        (:meth:`repro.core.backends.Backend.cache_relations`): a result
        is cacheable exactly when the backend can name the relations it
        is a pure function of.  The key then pins the query value, the
        semantics object, the backend, the session epoch, and the
        *generations of those relations* — so any write to a read
        relation changes the key (miss), while writes elsewhere leave it
        untouched (hit).
        """
        if not self._results_max:
            return None
        backend = _backends.get_backend(plan.backend)
        cq = _compile.compiled_query(prepared.query)
        reads = backend.cache_relations(prepared.semantics, plan.exact, cq)
        if reads is None:
            self._result_stats["uncacheable"] += 1
            return None
        gens = tuple(
            (name, self._rel_gens.get(name, 0)) for name in sorted(reads)
        )
        return (self._epoch, prepared.query, prepared.semantics, plan.backend, gens)

    def _result_get(self, key: tuple | None) -> frozenset | None:
        if key is None:
            return None
        found = self._results.pop(key, None)
        if found is None:
            self._result_stats["misses"] += 1
            return None
        self._results[key] = found  # re-insert at the LRU tail
        self._result_stats["hits"] += 1
        return found

    def _result_put(self, key: tuple, answers: frozenset) -> None:
        with self._lock:
            self._results.pop(key, None)
            self._results[key] = answers
            while len(self._results) > self._results_max:
                self._results.pop(next(iter(self._results)))
                self._result_stats["evictions"] += 1

    @staticmethod
    def _cache_stats_fields(key: tuple | None, cached: frozenset | None) -> dict:
        """The per-result stats entries describing the cache outcome."""
        fields: dict[str, object] = {
            "result_cache": (
                "hit" if cached is not None
                else "miss" if key is not None
                else "uncacheable"
            ),
        }
        if key is not None:
            fields["generations"] = dict(key[-1])
        return fields

    @staticmethod
    def _hit_result(plan: Plan, answers: frozenset, stats: dict) -> EvalResult:
        """An :class:`EvalResult` served from the cache (no execution)."""
        stats.update(backend=plan.backend, mode=plan.mode, execution_s=0.0)
        return EvalResult(
            answers, plan.backend, plan.exact, plan.direction, plan.verdict, stats
        )

    @property
    def cache_stats(self) -> dict[str, int]:
        """Result-cache counters: hits, misses, uncacheable, evictions, entries."""
        with self._lock:
            return {**self._result_stats, "entries": len(self._results)}

    # ------------------------------------------------------------------
    # the persistent oracle worker pool
    # ------------------------------------------------------------------

    def _worker_pool_for(self, plan: Plan):
        """The persistent pool when the plan shards worlds, else ``None``."""
        if not self._workers or self._workers <= 1 or plan.cost.workers <= 0:
            return None
        return self.ensure_worker_pool()

    def ensure_worker_pool(self):
        """Create (once) and return the persistent oracle worker pool.

        Servers call this at startup so the processes are forked before
        any client thread exists; lazy creation on first parallel plan
        remains the fallback for plain sessions.
        """
        if not self._workers or self._workers <= 1:
            return None
        with self._lock:
            if self._worker_pool is None:
                from repro.core.parallel import OracleWorkerPool

                self._worker_pool = OracleWorkerPool(self._workers)
            return self._worker_pool

    def close(self) -> None:
        """Release the worker pool and storage handles (idempotent).

        Deliberately does **not** snapshot: close must stay cheap and
        safe to call from error paths.  Long-lived services call
        :meth:`checkpoint` first on graceful shutdown (``repro serve``
        does) — and even without it, recovery replays the log.
        """
        with self._lock:
            pool, self._worker_pool = self._worker_pool, None
            storage, self._storage = self._storage, None
        if pool is not None:
            pool.close()
        if storage is not None:
            storage.close()

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # preparing queries
    # ------------------------------------------------------------------

    def query(
        self,
        source,
        vars: Sequence | None = None,
        *,
        semantics: Semantics | str | None = None,
        name: str | None = None,
    ) -> PreparedQuery:
        """Prepare a query for repeated evaluation against this session.

        ``source`` may be query text, a parsed ``Formula``, an
        already-built :class:`~repro.logic.queries.Query`, or a
        :class:`PreparedQuery` from this session (returned unchanged).
        ``vars`` fixes the answer-column order for text/formula sources;
        omitted, the free variables are used in name order.  Sources are
        interned in a bounded LRU table (size ``prepared_cache_size``):
        preparing the same text — or the same ``Query``/``Formula``
        value — twice returns the *same* prepared query, so its caches
        are shared.
        """
        if isinstance(source, PreparedQuery):
            if source.database is not self:
                raise ValueError("prepared query belongs to a different Database")
            if vars is not None:
                raise ValueError(
                    "vars cannot be overridden for an already-prepared query"
                )
            if name is not None:
                raise ValueError(
                    "name cannot be overridden for an already-prepared query"
                )
            if semantics is not None:
                wanted = (
                    get_semantics(semantics) if isinstance(semantics, str) else semantics
                )
                # identity, not key: two Semantics objects may share a key
                # yet expand differently
                if wanted is not source.semantics:
                    raise ValueError(
                        f"prepared query is bound to semantics "
                        f"{source.semantics.key!r}; re-prepare it for {wanted.key!r}"
                    )
            return source
        sem = self._semantics if semantics is None else (
            get_semantics(semantics) if isinstance(semantics, str) else semantics
        )
        # vars/name overrides on a Query source are rejected by as_query
        # below, before anything is inserted into the cache.
        # the semantics *object* (identity-hashed) keys the cache — a
        # custom Semantics sharing a registry key must not collide
        key = (source, tuple(vars) if vars is not None else None, name, sem)
        if not isinstance(source, str):
            try:
                hash(key)  # Query/Formula are usually hashable values
            except TypeError:
                return PreparedQuery(self, as_query(source, vars, name), sem)
        with self._lock:
            cached = self._prepared.pop(key, None)
            if cached is None:
                cached = PreparedQuery(self, as_query(source, vars, name), sem)
            self._prepared[key] = cached  # (re-)insert at the LRU tail
            while len(self._prepared) > self._prepared_max:
                self._prepared.pop(next(iter(self._prepared)))
            return cached

    prepare = query

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------

    def evaluate(self, source, vars: Sequence | None = None, *, mode: str = "auto",
                 semantics: Semantics | str | None = None) -> EvalResult:
        """One-shot convenience: prepare (or reuse) and evaluate."""
        return self.query(source, vars, semantics=semantics).evaluate(mode)

    def explain(self, source, vars: Sequence | None = None, *, mode: str = "auto",
                semantics: Semantics | str | None = None) -> Plan:
        """The structured :class:`Plan` for a query, without running it."""
        return self.query(source, vars, semantics=semantics).plan(mode)

    def evaluate_many(self, sources: Iterable, *, mode: str = "auto") -> list[EvalResult]:
        """Evaluate a batch, sharing pool construction and the core check.

        One constant pool is built covering the instance plus *every*
        query's constants (a superset pool keeps enumeration exact —
        it only enumerates more worlds), and the core check is computed
        at most once for the whole batch via the session cache.  Results
        served from the result cache skip execution entirely; the pool
        is only materialised when some cache-missing plan reads it.
        Each result's ``stats`` reports its own planning/execution time
        plus ``batch=True`` and the shared pool size.
        """
        with self._lock:
            prepared = [self.query(s) for s in sources]
            if not prepared:
                return []
            instance = self._instance
            generation = self._generation
            extra_facts = self._extra_facts
            limit = self.limit
            workers = self._workers
            entries: list[tuple[PreparedQuery, Plan, float, tuple | None, frozenset | None]] = []
            for p in prepared:
                t0 = perf_counter()
                plan = p.plan(mode)  # cached per relevant state and mode
                key = self._result_key(p, plan)
                cached = self._result_get(key)
                entries.append((p, plan, perf_counter() - t0, key, cached))
            # one superset pool for the whole batch — but only when some
            # cache-missing plan actually routes to a pool-reading backend
            shared_pool: tuple[Hashable, ...] | None = None
            pool_build = 0.0
            if any(
                cached is None and _backends.get_backend(plan.backend).uses_pool
                for _, plan, _, _, cached in entries
            ):
                extra: set[Hashable] = set()
                for p in prepared:
                    extra |= set(p.query.constants())
                memo_key = (generation, frozenset(extra))
                if self._batch_pool_key != memo_key:
                    t0 = perf_counter()
                    self._batch_pool = tuple(
                        _certain.default_pool(instance, extra_constants=extra)
                    )
                    pool_build = perf_counter() - t0
                    self._batch_pool_key = memo_key
                shared_pool = self._batch_pool
            worker_pools = [self._worker_pool_for(plan) for _, plan, _, _, _ in entries]
        results: list[EvalResult] = []
        for (p, plan, planning, key, cached), worker_pool in zip(entries, worker_pools):
            uses_pool = _backends.get_backend(plan.backend).uses_pool
            stats: dict[str, object] = {
                "planning_s": planning,
                # one-off cost of building the shared pool, reported
                # on every result of the batch that paid it
                "pool_build_s": pool_build,
                "pool_size": (
                    len(shared_pool)
                    if shared_pool is not None and uses_pool and cached is None
                    else 0
                ),
                "generation": generation,
                "batch": True,
                **self._cache_stats_fields(key, cached),
            }
            if cached is not None:
                results.append(self._hit_result(plan, cached, stats))
                continue
            result = _engine.execute_plan(
                plan,
                p.query,
                instance,
                p.semantics,
                pool=shared_pool if uses_pool else None,
                extra_facts=extra_facts,
                limit=limit,
                workers=workers,
                worker_pool=worker_pool,
                stats=stats,
            )
            if key is not None:
                self._result_put(key, result.answers)
            results.append(result)
        return results

    def __repr__(self) -> str:
        return (
            f"Database({self._instance!r}, semantics={self._semantics.key!r}, "
            f"generation={self._generation})"
        )
