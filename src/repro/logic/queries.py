"""The :class:`Query` wrapper: a formula plus an ordered answer tuple.

The paper's queries are mappings from databases to ``k``-ary relations
over the active domain, with Boolean queries as the ``k = 0`` case
(Sections 2.4 and 8).  A :class:`Query` fixes the order of the answer
variables, evaluates naively (first stage only — see ``repro.core`` for
the full naive-evaluation pipeline and certain answers), and knows which
syntactic fragments it belongs to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from repro.data.instance import Instance
from repro.logic.ast import Formula, Var
from repro.logic.classes import classify
from repro.logic.eval import answers, evaluate
from repro.logic.transform import constants_used, free_vars

__all__ = ["Query"]


@dataclass(frozen=True)
class Query:
    """A named k-ary FO query.

    ``answer_vars`` lists the free variables in answer-column order; a
    Boolean query has an empty tuple.  Construction validates that the
    declared variables are exactly the free variables of the formula.
    """

    formula: Formula
    answer_vars: tuple[Var, ...] = ()
    name: str = "Q"

    def __post_init__(self):
        declared = tuple(
            Var(v) if isinstance(v, str) else v for v in self.answer_vars
        )
        object.__setattr__(self, "answer_vars", declared)
        if len(set(declared)) != len(declared):
            raise ValueError("answer variables must be distinct")
        free = free_vars(self.formula)
        if set(declared) != free:
            missing = ", ".join(sorted(v.name for v in free - set(declared)))
            extra = ", ".join(sorted(v.name for v in set(declared) - free))
            raise ValueError(
                "answer variables must be exactly the free variables"
                + (f"; missing: {missing}" if missing else "")
                + (f"; not free: {extra}" if extra else "")
            )

    @classmethod
    def boolean(cls, formula: Formula, name: str = "Q") -> "Query":
        """A Boolean (sentence) query."""
        return cls(formula, (), name)

    @property
    def arity(self) -> int:
        """Number of answer columns (0 for Boolean queries)."""
        return len(self.answer_vars)

    @property
    def is_boolean(self) -> bool:
        return not self.answer_vars

    def constants(self) -> frozenset[Hashable]:
        """Constants mentioned in the query (the ``C`` of C-genericity)."""
        return constants_used(self.formula)

    def fragments(self) -> tuple[str, ...]:
        """The syntactic fragments containing this query's formula."""
        return classify(self.formula)

    # ------------------------------------------------------------------
    # evaluation (first stage: nulls as plain values)
    # ------------------------------------------------------------------

    def eval_raw(self, instance: Instance) -> frozenset[tuple[Hashable, ...]]:
        """Stage one of naive evaluation: answers with nulls kept.

        For a Boolean query the result is ``{()}`` for true and
        ``frozenset()`` for false, so set operations compose uniformly
        across arities.
        """
        if self.is_boolean:
            return frozenset([()]) if evaluate(self.formula, instance) else frozenset()
        return answers(self.formula, instance, self.answer_vars)

    def holds(self, instance: Instance) -> bool:
        """Boolean evaluation; raises for non-Boolean queries."""
        if not self.is_boolean:
            raise ValueError(f"query {self.name!r} has arity {self.arity}; use eval_raw()")
        return evaluate(self.formula, instance)

    def __repr__(self) -> str:
        if self.is_boolean:
            return f"Query[{self.name}] ≡ {self.formula!r}"
        head = ", ".join(v.name for v in self.answer_vars)
        return f"Query[{self.name}]({head}) ≡ {self.formula!r}"
