"""Extension experiments: c-tables and constraints (paper Section 12).

The paper's future-work directions made measurable:

* conditional tables are a strong representation system — validate
  ``rep(Q(T)) = {Q(E) : E ∈ rep(T)}`` for the difference operator (the
  one naive tables cannot express) and time the construction;
* integrity constraints shrink ``[[D]]`` and grow certain answers —
  measure the constrained oracle against the plain one.
"""

from repro.constraints import FunctionalDependency, Key, certain_answers_under
from repro.core.certain import certain_answers
from repro.ctables import CFact, CInstance, cneq, difference
from repro.data.instance import Instance
from repro.data.values import Null
from repro.logic.parser import parse
from repro.logic.queries import Query
from repro.semantics import get_semantics

X, Y = Null("x"), Null("y")


def test_ctable_difference_strong_representation(benchmark):
    ct = CInstance((CFact("A", (1,)), CFact("A", (2,)), CFact("B", (X,))))
    pool = [1, 2]

    def run():
        out = difference(ct, "A", "B", "Q")
        represented = {w.restrict(["Q"]) for w in out.worlds(pool)}
        direct = set()
        for world in ct.worlds(pool):
            kept = world.tuples("A") - world.tuples("B")
            direct.add(Instance({"Q": kept}) if kept else Instance.empty())
        return represented == direct

    equal = benchmark(run)
    benchmark.extra_info["strong_representation"] = equal
    assert equal


def test_ctable_constrained_not_in(benchmark):
    """A global condition x ≠ 1 gives the difference a certain answer."""
    ct = CInstance(
        (CFact("A", (1,)), CFact("A", (2,)), CFact("B", (X,))),
        global_condition=cneq(X, 1),
    )
    q = Query(parse("Q(v)"), ("v",))

    def run():
        return difference(ct, "A", "B", "Q").certain_answers(q)

    answers = benchmark(run)
    benchmark.extra_info["certain"] = sorted(map(str, answers))
    assert answers == frozenset({(1,)})


def test_key_constraint_grows_certain_answers(benchmark):
    d = Instance({"R": [(1, X), (1, 2)]})
    q = Query.boolean(parse("forall a, b . R(a, b) -> b = 2"))
    key = Key("R", (0,), 2)

    def run():
        plain = bool(certain_answers(q, d, get_semantics("cwa")))
        constrained = bool(
            certain_answers_under(q, d, get_semantics("cwa"), [key])
        )
        return plain, constrained

    plain, constrained = benchmark(run)
    benchmark.extra_info["plain/constrained"] = f"{plain}/{constrained}"
    assert not plain and constrained


def test_constrained_oracle_overhead(benchmark):
    """Cost of filtering worlds through an FD during enumeration."""
    d = Instance({"R": [(1, X), (2, Y), (1, 2)]})
    q = Query(parse("R(a, b)"), ("a", "b"))
    fd = FunctionalDependency("R", (0,), (1,))
    answers = benchmark(
        certain_answers_under, q, d, get_semantics("cwa"), [fd]
    )
    assert (1, 2) in answers
