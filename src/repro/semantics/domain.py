"""Abstract database domains ``⟨D, C, [[·]], ≈⟩`` (Sections 3 and 9).

The paper's most general setting: a set of objects, a subset of complete
objects, a semantic function into nonempty sets of complete objects, and
a structural-equivalence relation.  This module realises it for
*finite, explicit* domains, which makes every definition executable:

* the semantic ordering ``x ≼ y ⇔ [[y]] ⊆ [[x]]``,
* fairness and its characterisation (Proposition 3.2),
* (weak) monotonicity and genericity of Boolean queries,
* certain answers and naive evaluation,
* the saturation property, representative sets and the χ_S function
  (Section 9).

Tests use micro-domains to *check the theorems themselves*:
Theorem 3.1 (naive ⇔ weak monotonicity on saturated domains),
Proposition 3.3 (⇔ monotonicity on fair saturated domains),
Theorem 9.1 and Corollary 9.3 (representative sets).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Hashable, Mapping

__all__ = ["DatabaseDomain"]

Obj = Hashable
BoolQuery = Callable[[Obj], bool]


@dataclass(frozen=True)
class DatabaseDomain:
    """A finite, explicitly-given database domain.

    ``sem`` maps each object to its (nonempty) set of complete objects;
    ``iso_key`` induces ``≈``: two objects are equivalent iff their keys
    are equal (fine for the finite test domains this class is for).
    """

    objects: frozenset
    complete: frozenset
    sem: Mapping[Obj, frozenset]
    iso_key: Callable[[Obj], Hashable] = field(default=lambda x: x)

    def __post_init__(self):
        if not self.complete <= self.objects:
            raise ValueError("complete objects must be objects")
        for x in self.objects:
            image = self.sem.get(x)
            if not image:
                raise ValueError(f"[[{x!r}]] must be a nonempty set")
            if not frozenset(image) <= self.complete:
                raise ValueError(f"[[{x!r}]] must contain only complete objects")

    # ------------------------------------------------------------------
    # the semantic ordering and fairness
    # ------------------------------------------------------------------

    def leq(self, x: Obj, y: Obj) -> bool:
        """The semantic ordering ``x ≼ y ⇔ [[y]] ⊆ [[x]]``."""
        return frozenset(self.sem[y]) <= frozenset(self.sem[x])

    def equivalent(self, x: Obj, y: Obj) -> bool:
        """Structural equivalence ``x ≈ y``."""
        return self.iso_key(x) == self.iso_key(y)

    def is_fair(self) -> bool:
        """Fairness: the semantics induced by ``≼`` is ``[[·]]`` itself."""
        return all(
            frozenset(self.sem[x])
            == frozenset(
                c
                for c in self.complete
                if frozenset(self.sem[c]) <= frozenset(self.sem[x])
            )
            for x in self.objects
        )

    def fairness_conditions(self) -> tuple[bool, bool]:
        """Proposition 3.2's two conditions, separately.

        (1) ``c ∈ [[c]]`` for each complete ``c``;
        (2) ``c ∈ [[x]]`` implies ``[[c]] ⊆ [[x]]``.
        """
        cond1 = all(c in self.sem[c] for c in self.complete)
        cond2 = all(
            frozenset(self.sem[c]) <= frozenset(self.sem[x])
            for x in self.objects
            for c in self.sem[x]
        )
        return cond1, cond2

    # ------------------------------------------------------------------
    # saturation and representative sets (Section 9)
    # ------------------------------------------------------------------

    def is_saturated(self) -> bool:
        """Each object has an isomorphic complete object in its semantics."""
        return all(self.has_saturation_witness(x) for x in self.objects)

    def has_saturation_witness(self, x: Obj) -> bool:
        return any(self.equivalent(x, c) for c in self.sem[x])

    def is_representative_set(
        self, subset: frozenset, chi: Mapping[Obj, Obj]
    ) -> bool:
        """Is ``subset`` a representative set with selector ``chi``?

        Checks the three conditions of Section 9: contains all complete
        objects, is saturated, and ``[[x]] = [[χ(x)]]`` with
        ``χ(x) ∈ subset`` for every object.
        """
        if not self.complete <= subset:
            return False
        if not all(self.has_saturation_witness(s) for s in subset):
            return False
        for x in self.objects:
            rep = chi.get(x)
            if rep is None or rep not in subset:
                return False
            if frozenset(self.sem[x]) != frozenset(self.sem[rep]):
                return False
        return True

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def is_generic(self, query: BoolQuery) -> bool:
        """Does the query agree on ≈-equivalent objects?"""
        by_key: dict[Hashable, bool] = {}
        for x in self.objects:
            key = self.iso_key(x)
            value = bool(query(x))
            if by_key.setdefault(key, value) != value:
                return False
        return True

    def certain(self, query: BoolQuery, x: Obj) -> bool:
        """``certain(Q, x) = ⋀ { Q(c) | c ∈ [[x]] }``."""
        return all(query(c) for c in self.sem[x])

    def naive_works(self, query: BoolQuery, over: frozenset | None = None) -> bool:
        """Does ``Q(x) = certain(Q, x)`` for every object (of ``over``)?"""
        objects = over if over is not None else self.objects
        return all(bool(query(x)) == self.certain(query, x) for x in objects)

    def weakly_monotone(self, query: BoolQuery, over: frozenset | None = None) -> bool:
        """``y ∈ [[x]] ⇒ Q(x) ≤ Q(y)`` over the given objects."""
        objects = over if over is not None else self.objects
        return all(
            (not query(x)) or query(y)
            for x in objects
            for y in self.sem[x]
        )

    def monotone(self, query: BoolQuery) -> bool:
        """``x ≼ y ⇒ Q(x) ≤ Q(y)``."""
        return all(
            (not self.leq(x, y)) or (not query(x)) or query(y)
            for x in self.objects
            for y in self.objects
        )
