"""Cores and minimal-valuation semantics (paper Sections 9–10).

Data-exchange systems (the origin of the minimal semantics, Hernich
2011) materialise *canonical solutions* full of labelled nulls; query
answering then interprets them under closed-world semantics with
minimal valuations.  This example shows:

* D-minimal valuations and how they differ from arbitrary ones,
* the core as the representative instance (Theorem 10.2),
* why naive evaluation needs the core condition (Corollary 10.6/10.11),
* the approximation guarantee off-core (Proposition 10.13),
* the famous C4+C6 graph where minimality and cores come apart
  (Proposition 10.1).

Run with::

    python examples/cores_and_minimality.py
"""

from repro import Instance, Null, Query, evaluate, parse
from repro.core import certain_holds, naive_holds
from repro.data.generate import cores_graph_example, cycle, disjoint_union
from repro.homs.core import core, is_core
from repro.homs.minimal import is_d_minimal, iter_minimal_valuations
from repro.semantics import get_semantics

# ----------------------------------------------------------------------
# 1. A canonical solution with redundancy (as data exchange produces)
# ----------------------------------------------------------------------

x, y = Null("x"), Null("y")
solution = Instance({"T": [(x, x), (x, y)]})
print("Canonical solution:", solution)
print("Its core:         ", core(solution))

# A valuation separating the nulls is NOT minimal:
print("\nv = {x→1, y→2} minimal?", is_d_minimal(solution, {x: 1, y: 2}))
print("v = {x→1, y→1} minimal?", is_d_minimal(solution, {x: 1, y: 1}))

print("\nAll minimal valuations into {1, 2}:")
for valuation in iter_minimal_valuations(solution, [1, 2]):
    print(f"  {valuation} → {solution.apply(valuation)}")

# ----------------------------------------------------------------------
# 2. Naive evaluation off-core: the Cor. 10.11 remark
# ----------------------------------------------------------------------

reflexive = Query.boolean(parse("forall v . T(v, v)"), name="all_reflexive")
print(f"\n[{reflexive.name}] naive on the solution:  {naive_holds(reflexive, solution)}")
print(
    f"[{reflexive.name}] certain under [[·]]^min_CWA: "
    f"{certain_holds(reflexive, solution, get_semantics('mincwa'))}"
)
print(
    f"[{reflexive.name}] naive on the core:        "
    f"{naive_holds(reflexive, core(solution))}"
)
# naive disagrees with certain exactly because Q(D) ≠ Q(core(D)).

# The engine knows: off-core it refuses naive evaluation ...
result = evaluate(reflexive, solution, semantics="mincwa")
print(f"engine method off-core: {result.method} → {result.holds}")
# ... and on the core it routes naively with an exactness guarantee.
result_core = evaluate(reflexive, core(solution), semantics="mincwa")
print(f"engine method on-core:  {result_core.method} → {result_core.holds}")
assert result.holds and result_core.holds

# ----------------------------------------------------------------------
# 3. Prop. 10.13: naive 'true' is still a sound approximation off-core
# ----------------------------------------------------------------------

guarded = Query.boolean(
    parse("forall v, w . T(v, w) -> exists u . T(v, u)"), name="guarded"
)
assert naive_holds(guarded, solution)
assert certain_holds(guarded, solution, get_semantics("mincwa"))
print(f"\n[{guarded.name}] naive=true ⇒ certain=true off-core (Prop. 10.13) ✓")

# ----------------------------------------------------------------------
# 4. The C4 + C6 graph: minimality is subtler than cores (Prop. 10.1)
# ----------------------------------------------------------------------

g, h_graph, hom = cores_graph_example()
print("\nG = C4 + C6 is a core:", is_core(g, fix_constants=False))
print("H = C3 + C2 is a core:", is_core(h_graph, fix_constants=False))
print("h : G → H strong onto but NOT G-minimal:", not is_d_minimal(g, hom, mode="mapping"))

# consequence: the complete C3+C2 is a CWA-possible world of G but not
# a minimal-CWA one:
target = disjoint_union(cycle(3, ["a", "b", "c"]), cycle(2, ["d", "e"]))
print(
    "C3^C + C2^C ∈ [[G]]_CWA:",
    get_semantics("cwa").contains(g, target),
    "   ∈ [[G]]^min_CWA:",
    get_semantics("mincwa").contains(g, target),
)

print("\nCores & minimality example OK.")
