"""Data integration with marked nulls: the paper's motivating scenario.

Two sources are merged into a mediated schema; values one source lacks
become *marked nulls* shared across facts (exactly how integration and
exchange systems introduce incompleteness).  Queries over the mediated
database are then answered with certain-answer semantics, and the
analyzer decides per query whether plain SQL-style evaluation (naive)
is already correct.

Run with::

    python examples/data_integration.py
"""

from repro import Instance, NullFactory, Query, analyze, evaluate, parse
from repro.algebra import from_instance

# ----------------------------------------------------------------------
# 1. Sources: a personnel feed and a payroll feed
# ----------------------------------------------------------------------

fresh = NullFactory("u")

# personnel knows employees and their departments
personnel = [
    ("ada", "research"),
    ("bob", "sales"),
]

# payroll knows salaries by employee, but covers someone personnel
# doesn't know yet ("eve") — her department is unknown: a marked null.
payroll = [
    ("ada", 120),
    ("eve", 95),
]

eve_dept = fresh.fresh()  # ⊥u1: eve's unknown department
bob_salary_null = fresh.fresh()  # payroll lacks bob: unknown salary

mediated = Instance(
    {
        "Emp": [("ada", "research"), ("bob", "sales"), ("eve", eve_dept)],
        "Sal": [("ada", 120), ("eve", 95), ("bob", bob_salary_null)],
    }
)
print("Mediated database (marked nulls from integration):")
print(mediated.pretty())

# ----------------------------------------------------------------------
# 2. A UCQ: who earns something and works somewhere?
# ----------------------------------------------------------------------

q_known = Query(
    parse("exists d, s (Emp(x, d) & Sal(x, s))"),
    ("x",),
    name="employed_and_paid",
)
verdict = analyze(q_known, "owa")
print(f"\n[{q_known.name}] analyzer: sound={verdict.sound} → {verdict.reason}")
result = evaluate(q_known, mediated, semantics="owa")
print(f"certain answers: {sorted(result.answers)}  (method={result.method})")
assert result.answers == frozenset({("ada",), ("bob",), ("eve",)})

# ----------------------------------------------------------------------
# 3. A join through a null: which departments certainly pay someone ≥ 95?
#    (eve's department is unknown, so it cannot be certain)
# ----------------------------------------------------------------------

q_dept = Query(
    parse("exists x (Emp(x, d) & Sal(x, 120))"),
    ("d",),
    name="dept_of_120_earner",
)
result = evaluate(q_dept, mediated, semantics="owa")
print(f"\n[{q_dept.name}] certain answers: {sorted(result.answers)}")
assert result.answers == frozenset({("research",)})

# ----------------------------------------------------------------------
# 4. The same pipeline, algebraically (σ/π/⋈ with naive null equality)
# ----------------------------------------------------------------------

emp = from_instance(mediated, "Emp", ("name", "dept"))
sal = from_instance(mediated, "Sal", ("name", "amount"))
algebra_answer = (
    emp.join(sal.select_eq("amount", 120)).project(("dept",)).drop_null_rows()
)
print(f"\nalgebra pipeline agrees: {sorted(algebra_answer.rows)}")
assert algebra_answer.rows == frozenset({("research",)})

# ----------------------------------------------------------------------
# 5. A non-UCQ question needs closed-world reasoning
#    "is every employee on payroll?" — naive evaluation is unsound
#    under OWA (the analyzer says so) but fine under CWA.
# ----------------------------------------------------------------------

q_all_paid = Query.boolean(
    parse("forall e, d . Emp(e, d) -> exists s . Sal(e, s)"),
    name="everyone_paid",
)
for semantics in ("owa", "cwa"):
    verdict = analyze(q_all_paid, semantics)
    result = evaluate(q_all_paid, mediated, semantics=semantics)
    print(
        f"\n[{q_all_paid.name}] under {semantics.upper()}: certain={result.holds} "
        f"(method={result.method}, sound fragment: {verdict.fragment})"
    )

print("\nData-integration example OK.")
