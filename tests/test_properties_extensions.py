"""Property-based tests for the extension substrates (sql3, datalog, ctables, constraints)."""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.constraints import FunctionalDependency, satisfies
from repro.ctables import CFact, CInstance, TRUE_C, cand, ceq, cneq
from repro.data.instance import Instance
from repro.data.schema import Schema
from repro.data.values import Null
from repro.datalog import Atom, Program, Rule, datalog_naive_answers, evaluate_program
from repro.logic.ast import Var
from repro.logic.generate import random_sentence
from repro.logic.eval import evaluate as evaluate2
from repro.sql3 import Truth, evaluate3, t_and, t_not, t_or

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------

values = st.one_of(
    st.integers(min_value=1, max_value=3),
    st.builds(Null, st.sampled_from(["a", "b"])),
)
pairs = st.tuples(values, values)


@st.composite
def instances(draw, max_facts=4):
    rows = [draw(pairs) for _ in range(draw(st.integers(0, max_facts)))]
    singles = draw(st.lists(values, max_size=2))
    rels = {}
    if rows:
        rels["R"] = rows
    if singles:
        rels["S"] = [(v,) for v in singles]
    return Instance(rels)


truths = st.sampled_from([Truth.TRUE, Truth.FALSE, Truth.UNKNOWN])


# ----------------------------------------------------------------------
# Kleene logic laws
# ----------------------------------------------------------------------


@given(truths, truths)
def test_de_morgan_three_valued(a, b):
    assert t_not(t_and(a, b)) == t_or(t_not(a), t_not(b))
    assert t_not(t_or(a, b)) == t_and(t_not(a), t_not(b))


@given(truths)
def test_double_negation_three_valued(a):
    assert t_not(t_not(a)) == a


@given(truths, truths, truths)
def test_kleene_distributivity(a, b, c):
    assert t_and(a, t_or(b, c)) == t_or(t_and(a, b), t_and(a, c))


SCHEMA = Schema({"R": 2, "S": 1})


@given(instances(max_facts=3), st.integers(0, 300))
@settings(deadline=None, max_examples=30, suppress_health_check=[HealthCheck.too_slow])
def test_3vl_refines_2vl_on_complete_instances(instance, seed):
    """On complete instances, 3VL and classical evaluation coincide."""
    complete = instance.apply({n: 9 for n in instance.nulls()})
    rng = random.Random(seed)
    phi = random_sentence(SCHEMA, rng, "Pos", max_depth=2)
    classical = evaluate2(phi, complete)
    three = evaluate3(phi, complete)
    assert three == Truth.of(classical)


@given(instances(max_facts=3), st.integers(0, 300))
@settings(deadline=None, max_examples=30, suppress_health_check=[HealthCheck.too_slow])
def test_3vl_true_implies_naive_true_for_positive(instance, seed):
    """For positive formulae, SQL-TRUE is at least as strict as naive truth."""
    rng = random.Random(seed)
    phi = random_sentence(SCHEMA, rng, "EPos", max_depth=2)
    if evaluate3(phi, instance) is Truth.TRUE:
        assert evaluate2(phi, instance)


# ----------------------------------------------------------------------
# datalog invariants
# ----------------------------------------------------------------------

x, y, z = Var("x"), Var("y"), Var("z")
TC = Program(
    (
        Rule(Atom("T", (x, y)), (Atom("E", (x, y)),)),
        Rule(Atom("T", (x, z)), (Atom("E", (x, y)), Atom("T", (y, z)))),
    )
)


@st.composite
def edges(draw, max_facts=4):
    rows = [draw(pairs) for _ in range(draw(st.integers(0, max_facts)))]
    return Instance({"E": rows}) if rows else Instance.empty()


@given(edges())
@settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_fixpoint_is_increasing_and_idempotent(edb):
    fixpoint = evaluate_program(TC, edb)
    assert edb <= fixpoint
    assert evaluate_program(TC, fixpoint) == fixpoint


@given(edges())
@settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_semi_naive_equals_naive_iteration(edb):
    assert evaluate_program(TC, edb, semi_naive=True) == evaluate_program(
        TC, edb, semi_naive=False
    )


@given(edges(max_facts=3), edges(max_facts=2))
@settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_datalog_monotone_in_edb(small, extra):
    bigger = small.union(extra)
    a = evaluate_program(TC, small).tuples("T")
    b = evaluate_program(TC, bigger).tuples("T")
    assert a <= b


@given(edges(max_facts=3))
@settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_datalog_naive_answers_preserved_under_valuations(edb):
    """Weak monotonicity of datalog queries: certain answers survive
    instantiating the nulls."""
    before = datalog_naive_answers(TC, edb, "T")
    image = edb.apply({n: 7 for n in edb.nulls()})
    after = datalog_naive_answers(TC, image, "T")
    assert before <= after


# ----------------------------------------------------------------------
# c-tables invariants
# ----------------------------------------------------------------------

conditions = st.one_of(
    st.just(TRUE_C),
    st.builds(ceq, values, values),
    st.builds(cneq, values, values),
)


@st.composite
def cinstances(draw):
    n = draw(st.integers(1, 3))
    facts = tuple(
        CFact("R", draw(pairs), draw(conditions)) for _ in range(n)
    )
    return CInstance(facts)


@given(cinstances())
@settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_ctable_worlds_are_complete(ct):
    for world in ct.worlds([1, 2]):
        assert world.is_complete()


@given(cinstances())
@settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_naive_lift_matches_cwa_expansion(ct):
    """With all-true conditions, c-table worlds = CWA valuation images."""
    from repro.semantics import get_semantics

    naive = Instance({"R": [f.row for f in ct.facts]})
    lifted = CInstance.from_instance(naive)
    got = set(lifted.worlds([1, 2]))
    want = set(get_semantics("cwa").expand(naive, [1, 2]))
    assert got == want


@given(st.lists(pairs, min_size=1, max_size=3))
def test_condition_conjunction_monotone(rows):
    """Adding conjuncts never grows a fact's presence set."""
    base = ceq(rows[0][0], rows[0][1])
    stronger = cand(base, cneq(rows[-1][0], rows[-1][1]))
    for v1 in (1, 2):
        for v2 in (1, 2):
            valuation = {Null("a"): v1, Null("b"): v2}
            if stronger.satisfied(valuation):
                assert base.satisfied(valuation)


# ----------------------------------------------------------------------
# constraints invariants
# ----------------------------------------------------------------------


@given(instances(max_facts=4))
def test_fd_violation_iff_not_satisfies(instance):
    fd = FunctionalDependency("R", (0,), (1,))
    assert fd.holds_in(instance) == satisfies(instance, [fd])


@given(instances(max_facts=3))
@settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_constrained_expansion_is_subset(instance):
    from repro.constraints import ConstrainedSemantics
    from repro.semantics import get_semantics

    base = get_semantics("cwa")
    fd = FunctionalDependency("R", (0,), (1,))
    constrained = ConstrainedSemantics(base, [fd])
    all_worlds = set(base.expand(instance, [1, 2]))
    kept = set(constrained.expand(instance, [1, 2]))
    assert kept <= all_worlds
    assert all(satisfies(w, [fd]) for w in kept)
