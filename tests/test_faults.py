"""The failpoint registry, and what injection exposes in the storage stack.

Two layers of coverage: the registry itself (spec grammar, trigger
determinism, payload delivery), and the degraded-mode contract of a
durable session under injected storage failures — a failed append or
fsync must never be acknowledged, must flip the session read-only with
a typed :class:`~repro.session.DegradedError`, and a successful
``checkpoint`` must restore writability with a bit-identically
recoverable state.
"""

import errno

import pytest

from repro import faults
from repro.faults import (
    FaultAction,
    FaultRegistry,
    FaultSpecError,
    InjectedDropConnection,
)
from repro.session import Database, DegradedError
from repro.storage.snapshot import write_snapshot
from repro.storage.wal import WriteAheadLog


class TestSpecGrammar:
    def test_load_round_trips_through_describe(self):
        spec = "wal.append=every(3):enospc;wal.fsync=once:eio"
        assert FaultRegistry(spec).describe() == [
            "wal.append=every(3):enospc",
            "wal.fsync=once:eio",
        ]

    def test_unknown_point_is_rejected_at_parse_time(self):
        with pytest.raises(FaultSpecError, match="unknown failpoint"):
            FaultRegistry("wal.fsyncc=once:eio")

    @pytest.mark.parametrize(
        "spec",
        [
            "wal.fsync=eio",  # missing trigger
            "wal.fsync=sometimes:eio",  # unknown trigger
            "wal.fsync=every(0):eio",  # n < 1
            "wal.fsync=prob(1.5):eio",  # p out of range
            "wal.fsync=once:explode",  # unknown action
        ],
    )
    def test_malformed_entries_raise(self, spec):
        with pytest.raises(FaultSpecError):
            FaultRegistry(spec)

    def test_empty_spec_is_the_production_configuration(self):
        registry = FaultRegistry("")
        assert not registry
        assert registry.evaluate("wal.fsync") is None

    def test_actions_parse(self):
        assert FaultAction.parse("enospc").code == errno.ENOSPC
        assert FaultAction.parse("eio").code == errno.EIO
        assert FaultAction.parse("torn-write").kind == "torn-write"
        assert FaultAction.parse("drop-conn").kind == "drop-conn"
        assert FaultAction.parse("hang(250)").ms == 250.0


class TestTriggers:
    def test_once_fires_exactly_once(self):
        registry = FaultRegistry("wal.fsync=once:eio")
        assert registry.evaluate("wal.fsync") is not None
        assert all(registry.evaluate("wal.fsync") is None for _ in range(10))
        assert registry.stats()["wal.fsync"]["fired"] == 1

    def test_every_n_fires_on_every_nth_evaluation(self):
        registry = FaultRegistry("wal.append=every(3):eio")
        outcomes = [registry.evaluate("wal.append") is not None for _ in range(9)]
        assert outcomes == [False, False, True] * 3

    def test_prob_is_deterministic_per_seed(self):
        draws = []
        for _ in range(2):
            registry = FaultRegistry("server.send=prob(0.5,42):drop-conn")
            draws.append(
                [registry.evaluate("server.send") is not None for _ in range(64)]
            )
        assert draws[0] == draws[1]
        assert any(draws[0]) and not all(draws[0])

    def test_unarmed_points_never_fire(self):
        registry = FaultRegistry("wal.fsync=once:eio")
        assert registry.evaluate("wal.append") is None


class TestPayloadDelivery:
    def test_errno_payload_raises_oserror_with_that_code(self):
        registry = FaultRegistry("wal.append=once:enospc")
        with pytest.raises(OSError) as err:
            registry.fire("wal.append")
        assert err.value.errno == errno.ENOSPC

    def test_drop_conn_raises_the_typed_connection_reset(self):
        registry = FaultRegistry("server.send=once:drop-conn")
        with pytest.raises(InjectedDropConnection):
            registry.fire("server.send")

    def test_torn_write_is_returned_only_to_tearable_sites(self):
        registry = FaultRegistry("wal.append=every(1):torn-write")
        action = registry.fire("wal.append", tearable=True)
        assert action is not None and action.kind == "torn-write"
        with pytest.raises(OSError) as err:  # non-tearable sites get EIO
            registry.fire("wal.append")
        assert err.value.errno == errno.EIO

    def test_hang_sleeps_then_proceeds(self):
        from time import monotonic

        registry = FaultRegistry("server.recv=once:hang(30)")
        start = monotonic()
        assert registry.fire("server.recv").kind == "hang"
        assert monotonic() - start >= 0.025

    def test_global_registry_install_and_coerce(self):
        installed = faults.install("wal.fsync=once:eio")
        try:
            assert faults.coerce(None) is installed
            own = faults.coerce("wal.append=once:eio")
            assert own is not installed and own.describe() == ["wal.append=once:eio"]
            assert faults.coerce(own) is own
        finally:
            faults.install(None)
        assert not faults.global_registry()


class TestWalInjection:
    def test_fsync_failure_leaves_synced_watermark_behind(self, tmp_path):
        wal = WriteAheadLog(
            tmp_path / "wal.repro", faults=FaultRegistry("wal.fsync=once:eio")
        )
        wal.open_for_append()
        offset = wal.append({"g": 1, "rg": {"R": 1}})
        with pytest.raises(OSError):
            wal.sync(offset)
        wal.sync(offset)  # the failpoint has spent itself: now durable
        records, torn = wal.replay()
        assert [r["g"] for r in records] == [1] and torn == 0
        wal.close()

    def test_torn_append_flushes_a_partial_frame_and_marks_the_tail(self, tmp_path):
        wal = WriteAheadLog(
            tmp_path / "wal.repro",
            faults=FaultRegistry("wal.append=every(2):torn-write"),
        )
        wal.open_for_append()
        wal.append({"g": 1, "rg": {"R": 1}})  # evaluation 1: no fire
        with pytest.raises(OSError):
            wal.append({"g": 2, "rg": {"R": 2}})
        assert wal.dirty_tail
        # the dirty tail refuses further appends until truncation
        with pytest.raises(OSError):
            wal.append({"g": 3, "rg": {"R": 3}})
        records, torn = wal.replay()  # replay sees one good record + garbage
        assert [r["g"] for r in records] == [1] and torn > 0
        wal.open_for_append()
        wal.truncate()
        assert not wal.dirty_tail
        wal.append({"g": 2, "rg": {"R": 2}})
        wal.close()

    def test_snapshot_write_failure_keeps_the_previous_snapshot(self, tmp_path):
        from repro.data.instance import Instance
        from repro.storage.snapshot import SnapshotState, read_snapshot

        path = tmp_path / "snapshot.repro"
        write_snapshot(path, SnapshotState(Instance({"R": [(1, 2)]}), 1, {"R": 1}))
        registry = FaultRegistry("snapshot.write=once:torn-write")
        with pytest.raises(OSError):
            write_snapshot(
                path,
                SnapshotState(Instance({"R": [(1, 2), (3, 4)]}), 2, {"R": 2}),
                faults=registry,
            )
        assert not path.with_name(path.name + ".tmp").exists()  # no half-snapshot
        assert read_snapshot(path).generation == 1  # old snapshot intact


class TestDegradedMode:
    """The session-level contract: never ack, degrade, heal by checkpoint."""

    @pytest.mark.parametrize("action", ["enospc", "eio"])
    def test_append_failure_is_never_acked_and_never_published(self, tmp_path, action):
        db = Database(path=str(tmp_path), faults=f"wal.append=once:{action}")
        with pytest.raises(DegradedError):
            db.insert("R", (1, 2))
        # nothing published: the lost write is definitively absent
        assert db.instance.fact_count() == 0 and db.generation == 0
        assert db.health["state"] == "degraded"
        with pytest.raises(DegradedError):  # still read-only
            db.insert("R", (3, 4))
        db.close()

    @pytest.mark.parametrize("action", ["enospc", "eio"])
    def test_fsync_failure_is_never_acked_but_stays_visible(self, tmp_path, action):
        db = Database(path=str(tmp_path), faults=f"wal.fsync=once:{action}")
        with pytest.raises(DegradedError):
            db.insert("R", (1, 2))
        # published before the fsync: in-memory truth keeps the write
        # (indeterminate until the healing checkpoint persists it) but
        # the caller was told "not acknowledged"
        assert db.instance.fact_count() == 1
        assert db.health["state"] == "degraded"
        assert db.health["reason"].startswith("wal fsync failed")
        db.close()

    def test_snapshot_publish_failure_degrades_the_checkpoint(self, tmp_path):
        db = Database(path=str(tmp_path), faults="snapshot.write=once:enospc")
        db.insert("R", (1, 2))  # journaled fine
        with pytest.raises(DegradedError):
            db.checkpoint()
        assert db.health["state"] == "degraded"
        with pytest.raises(DegradedError):
            db.insert("R", (3, 4))
        db.close()

    def test_checkpoint_heals_and_recovery_is_bit_identical(self, tmp_path):
        db = Database(path=str(tmp_path), faults="wal.fsync=every(2):eio")
        db.insert("R", (1, 2))
        with pytest.raises(DegradedError):
            db.insert("R", (3, 4))  # the injected failure
        assert db.health["state"] == "degraded"
        # the failpoint was `once`: the disk has "recovered", so the
        # operator checkpoint succeeds and heals the session
        assert db.checkpoint() is True
        assert db.health == {
            "state": "ok",
            "reason": None,
            "since": None,
            "degraded_count": 1,
        }
        assert db.insert("R", (5, 6)) == 1  # writable again
        expected = (
            set(db.instance.tuples("R")),
            db.generation,
            {"R": db.rel_generation("R")},
        )
        db.close()
        recovered = Database(path=str(tmp_path))
        assert (
            set(recovered.instance.tuples("R")),
            recovered.generation,
            {"R": recovered.rel_generation("R")},
        ) == expected
        recovered.close()

    def test_torn_append_heals_through_checkpoint(self, tmp_path):
        db = Database(path=str(tmp_path), faults="wal.append=every(2):torn-write")
        db.insert("R", (1, 2))
        with pytest.raises(DegradedError):
            db.insert("R", (3, 4))
        # the checkpoint must truncate the torn tail even though the
        # snapshot already covers every published write
        assert db.checkpoint() is True
        assert db.insert("R", (5, 6)) == 1
        state = (set(db.instance.tuples("R")), db.generation)
        db.close()
        recovered = Database(path=str(tmp_path))
        assert (set(recovered.instance.tuples("R")), recovered.generation) == state
        recovered.close()

    def test_failed_auto_compaction_degrades_but_keeps_the_ack(self, tmp_path):
        # a tiny WAL budget forces a checkpoint after the first write;
        # its snapshot fails — but the write itself was fsync'd and acked
        db = Database(
            path=str(tmp_path),
            wal_max_bytes=1,
            faults="snapshot.write=once:enospc",
        )
        assert db.insert("R", (1, 2)) == 1  # acked despite the compaction failure
        assert db.health["state"] == "degraded"
        db.checkpoint()
        assert db.health["state"] == "ok"
        db.close()
        recovered = Database(path=str(tmp_path))
        assert recovered.instance.fact_count() == 1  # the acked write survived
        recovered.close()

    def test_memory_only_sessions_never_degrade(self):
        db = Database(faults="wal.append=every(1):enospc")
        assert db.insert("R", (1, 2)) == 1  # no storage: nothing to inject into
        assert db.health["state"] == "ok"
        db.close()
