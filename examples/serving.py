"""Serving quickstart: the JSON-lines query server and a socket client.

Starts ``repro``'s server in-process (exactly what ``python -m repro
serve db.json`` runs), then talks to it over a real TCP socket the way
any external client would: certain-answer queries, incremental
mutations, explicit batches, and the stats endpoint.  The key behaviour
to watch is the result cache — a write to a relation the query never
reads leaves the cached answer valid (``"cache": "hit"``), while a
write to a read relation transparently invalidates it.

Run with::

    PYTHONPATH=src python examples/serving.py
"""

import json
import socket

from repro.data.values import Null
from repro.server import serve
from repro.session import Database


class Client:
    """A minimal JSON-lines client: one request per line, one response back."""

    def __init__(self, address):
        self.sock = socket.create_connection(address, timeout=10)
        self.reader = self.sock.makefile("r", encoding="utf-8")
        self.writer = self.sock.makefile("w", encoding="utf-8")

    def call(self, **request):
        self.writer.write(json.dumps(request) + "\n")
        self.writer.flush()
        response = json.loads(self.reader.readline())
        assert response["ok"], response
        return response

    def close(self):
        self.sock.close()


def main() -> None:
    x = Null("x")
    db = Database(
        {"R": [(1, x), (2, 3)], "S": [(x, 4)], "Audit": [("boot", 0)]},
        semantics="cwa",
    )
    server = serve(db)  # picks a free port; `repro serve` is the CLI twin
    print(f"serving on {server.address[0]}:{server.address[1]}")

    client = Client(server.address)
    join = "exists z (R(x, z) & S(z, y))"

    # 1. a certain-answer query: ⊥x joins R and S, so (1, 4) is certain
    first = client.call(op="query", query=join, vars=["x", "y"])
    print(f"answers={first['answers']} cache={first['cache']}")
    assert first["answers"] == [[1, 4]] and first["exact"]

    # 2. a write to a relation the join never reads: the cached result
    #    survives (per-relation generations), so the re-query is a hit
    client.call(op="insert", relation="Audit", rows=[["req", 1]])
    again = client.call(op="query", query=join, vars=["x", "y"])
    print(f"after unrelated write: cache={again['cache']}")
    assert again["cache"] == "hit" and again["answers"] == first["answers"]

    # 3. a write to a *read* relation invalidates exactly that entry;
    #    null-carrying rows are fine on the wire ("?y" is the null ⊥y) —
    #    and (2, ⊥y) is rightly NOT a certain answer (nulls never are)
    client.call(op="insert", relation="S", rows=[[3, "?y"]])
    third = client.call(op="query", query=join, vars=["x", "y"])
    print(f"after related write:   cache={third['cache']} answers={third['answers']}")
    assert third["cache"] == "miss"
    assert third["answers"] == [[1, 4]]
    # ... but (2, ⊥y) IS a possible join row: ask under the Boolean reading
    possible = client.call(op="query", query="exists y (R(2, 3) & S(3, y))")
    assert possible["holds"]

    # 4. an explicit batch shares one plan/pool pass (evaluate_many)
    batch = client.call(
        op="batch",
        queries=[
            {"query": "exists u (Audit(u, 1))"},
            {"query": join, "vars": ["x", "y"]},
        ],
    )
    assert [r["holds"] for r in batch["results"]] == [True, True]

    # 5. bulk delta: several relations in one atomic generation
    delta = client.call(
        op="delta", adds={"R": [[9, 9]]}, removes={"Audit": [["boot", 0]]}
    )
    assert delta["changed"] == 2

    stats = client.call(op="stats")
    cache = stats["result_cache"]
    print(
        f"served {stats['requests']['requests']} requests; result cache "
        f"{cache['hits']} hits / {cache['misses']} misses"
    )
    assert cache["hits"] >= 1 and stats["requests"]["mutations"] == 3

    client.close()
    server.shutdown()
    db.close()
    print("serving example OK.")


if __name__ == "__main__":
    main()
