"""Tests for repro.core.analyzer: Figure 1 as executable policy."""

import pytest

from repro.core.analyzer import FIGURE_1, analyze
from repro.logic.parser import parse
from repro.logic.queries import Query
from repro.semantics import get_semantics

UCQ = Query.boolean(parse("exists x, y . D(x,y) & D(y,x)"))
POS = Query.boolean(parse("forall x . exists y . D(x,y)"))
GUARDED = Query.boolean(parse("forall x, y . E(x, y) -> exists z . E(y, z)"))
OPEN_GUARD = Query(parse("forall x . R(x) -> S(x, w)"), ("w",))
NEGATION = Query.boolean(parse("!(exists x . D(x, x))"))


class TestFigure1Table:
    def test_all_semantics_covered(self):
        assert set(FIGURE_1) == {"owa", "cwa", "wcwa", "pcwa", "mincwa", "minpcwa"}

    def test_ucq_sound_everywhere(self):
        for key in FIGURE_1:
            verdict = analyze(UCQ, key)
            assert verdict.sound, key

    def test_pos_sound_under_wcwa_cwa_not_owa(self):
        assert not analyze(POS, "owa").sound
        assert analyze(POS, "wcwa").sound
        assert analyze(POS, "cwa").sound
        assert not analyze(POS, "pcwa").sound  # plain ∀ is not a Boolean guard

    def test_guarded_sound_under_cwa_and_pcwa(self):
        assert analyze(GUARDED, "cwa").sound
        assert analyze(GUARDED, "pcwa").sound
        assert not analyze(GUARDED, "owa").sound

    def test_open_guard_cwa_only(self):
        # free variable in guard body: fine for Pos+∀G, not for ∃Pos+∀G_bool
        assert analyze(OPEN_GUARD, "cwa").sound
        assert not analyze(OPEN_GUARD, "pcwa").sound

    def test_negation_sound_nowhere(self):
        for key in FIGURE_1:
            assert not analyze(NEGATION, key).sound, key


class TestMinimalSemanticsVerdicts:
    def test_over_cores_flag(self):
        v = analyze(GUARDED, "mincwa")
        assert v.sound and v.over_cores_only and v.approximation

    def test_standard_semantics_not_core_restricted(self):
        assert not analyze(GUARDED, "cwa").over_cores_only


class TestVerdictText:
    def test_positive_reason_cites_paper(self):
        assert "Theorem 5.2" in analyze(POS, "cwa").reason

    def test_negative_reason_explains(self):
        reason = analyze(NEGATION, "cwa").reason
        assert "negation" in reason

    def test_owa_boolean_tightness_mentioned(self):
        reason = analyze(POS, "owa").reason
        assert "union of conjunctive queries" in reason

    def test_bool_protocol(self):
        assert analyze(UCQ, "owa")
        assert not analyze(NEGATION, "owa")


class TestInputs:
    def test_accepts_semantics_object(self):
        assert analyze(UCQ, get_semantics("cwa")).semantics == "cwa"

    def test_unknown_semantics_raises(self):
        with pytest.raises(ValueError):
            analyze(UCQ, "bogus")
