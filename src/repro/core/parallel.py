"""Parallel world sharding for the certain-answer oracle.

The CWA oracle intersects ``Q(v(D))`` over the canonical valuations of
the null slots (:mod:`repro.core.certain`).  The intersection is
associative and commutative, so the valuation space can be partitioned
into shards, each shard intersected independently, and the shard
results intersected at the end — with one powerful twist: **any** shard
whose running intersection becomes empty makes the global answer empty,
so an empty shard result cancels every other worker.

Sharding works on *canonical prefixes*: the restricted-growth
enumeration of ``certain._canonical_valuations`` is a tree whose level-d
nodes are the canonical prefixes of length d, and each worker expands a
set of disjoint subtrees.  The picklable
:class:`~repro.core.certain.WorldSpec` payload (compiled plan, row
templates, shared static relations) is shipped to each worker exactly
once via the pool initializer; the worker builds the static-relation
hash indexes once and reuses them across all its shards, mirroring the
per-instance index reuse of the serial path.

The pool start method prefers ``fork`` (cheap, shares the already-built
compiled-plan caches) and falls back to the platform default where fork
is unavailable.
"""

from __future__ import annotations

import multiprocessing
from time import perf_counter
from typing import Hashable, Sequence

from repro.core.certain import WorldSpec, _canonical_valuations

__all__ = ["shard_prefixes", "parallel_intersection"]

#: target number of shards per worker — small enough to keep payload
#: dispatch cheap, large enough that an early-cancelling shard frees its
#: worker for useful work instead of leaving it on one huge subtree
SHARDS_PER_WORKER = 4


def _mp_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


def shard_prefixes(
    n_slots: int,
    base_choices: Sequence[Hashable],
    fresh_tail: Sequence[Hashable],
    target: int,
) -> list[tuple[Hashable, ...]]:
    """Disjoint canonical prefixes covering the whole valuation space.

    Deepens one level at a time until at least ``target`` prefixes exist
    (or the prefixes are full valuations).  Level d prefixes are exactly
    the canonical valuations of d slots, so expanding each prefix with
    the restricted-growth generator partitions the space.
    """
    depth = 0
    prefixes: list[tuple[Hashable, ...]] = [()]
    while len(prefixes) < target and depth < n_slots:
        depth += 1
        prefixes = list(_canonical_valuations(depth, base_choices, fresh_tail))
    return prefixes


_WORKER_SPEC: WorldSpec | None = None
_WORKER_CTX = None


def _init_worker(spec: WorldSpec) -> None:
    """Receive the payload once per worker; pre-build the shared indexes."""
    global _WORKER_SPEC, _WORKER_CTX
    _WORKER_SPEC = spec
    _WORKER_CTX = spec.base_context()


def _run_chunk(chunk: tuple[int, list[tuple[Hashable, ...]]]):
    """Intersect one chunk of canonical-prefix subtrees.

    Starts from the seed intersection shipped in the spec, so a world
    disagreeing with the seed worlds empties the running intersection
    (and thereby cancels the whole computation) as early as possible.
    """
    chunk_id, prefixes = chunk
    spec, base_ctx = _WORKER_SPEC, _WORKER_CTX
    start = perf_counter()
    result, worlds, stopped = spec.run(
        (
            vals
            for prefix in prefixes
            for vals in _canonical_valuations(
                spec.n_slots, spec.base_choices, spec.fresh_tail, prefix=prefix
            )
        ),
        spec.seed,
        base_ctx,
        seen=set(spec.seed_keys),  # seed worlds were evaluated up front
    )
    return chunk_id, result, worlds, perf_counter() - start, stopped


def parallel_intersection(
    spec: WorldSpec,
    workers: int,
    stats_out: dict | None = None,
) -> frozenset | None:
    """``seed ∩ ⋂ Q(v(D))`` over all canonical valuations, sharded.

    Shard results stream back unordered; the first empty one terminates
    the pool (cancelling in-flight shards), which is sound because an
    empty shard intersection already determines the global answer.
    """
    prefixes = shard_prefixes(
        spec.n_slots, spec.base_choices, spec.fresh_tail, workers * SHARDS_PER_WORKER
    )
    n_chunks = min(len(prefixes), workers * SHARDS_PER_WORKER)
    chunks: list[tuple[int, list]] = [(i, []) for i in range(n_chunks)]
    for i, prefix in enumerate(prefixes):
        chunks[i % n_chunks][1].append(prefix)

    result = spec.seed
    worlds = 0
    cancelled = False
    per_shard: list[dict] = []
    ctx = _mp_context()
    with ctx.Pool(
        processes=min(workers, n_chunks),
        initializer=_init_worker,
        initargs=(spec,),
    ) as pool:
        for chunk_id, rows, shard_worlds, seconds, stopped in pool.imap_unordered(
            _run_chunk, chunks
        ):
            worlds += shard_worlds
            per_shard.append(
                {
                    "shard": chunk_id,
                    "worlds": shard_worlds,
                    "seconds": round(seconds, 6),
                    "empty": bool(stopped),
                }
            )
            if rows is not None:
                result = rows if result is None else result & rows
            if result is not None and not result:
                # running-intersection exchange: this shard's emptiness
                # decides the global answer — cancel every other worker
                cancelled = True
                pool.terminate()
                break

    if stats_out is not None:
        stats_out.update(
            mode="parallel",
            workers=min(workers, n_chunks),
            shards=n_chunks,
            worlds=worlds + stats_out.get("seed_worlds", 0),
            cancelled=cancelled,
            per_shard=sorted(per_shard, key=lambda s: s["shard"]),
        )
    return result
