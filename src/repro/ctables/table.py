"""Conditional instances and their possible-world semantics.

A conditional instance (c-instance) attaches a condition to every fact
and optionally a *global* condition; a valuation ``v`` produces the
world consisting of ``v``-images of the facts whose conditions ``v``
satisfies — the CWA semantics of c-tables [Imielinski & Lipski 1984].
Naive databases are the special case where every condition is ``⊤``.

C-tables are strictly more expressive: ``repro.ctables.algebra``
implements the positive relational algebra plus difference on them,
which is exactly what makes them a *strong representation system*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterator, Mapping, Sequence

from repro.data.instance import Instance
from repro.data.values import Null, sort_key
from repro.ctables.conditions import TRUE_C, Condition
from repro.homs.search import iter_mappings

__all__ = ["CFact", "CInstance"]


@dataclass(frozen=True)
class CFact:
    """One conditional fact: relation, row, and presence condition."""

    relation: str
    row: tuple[Hashable, ...]
    condition: Condition = TRUE_C

    def __repr__(self) -> str:
        body = ", ".join(map(repr, self.row))
        if isinstance(self.condition, type(TRUE_C)):
            return f"{self.relation}({body})"
        return f"{self.relation}({body}) ← {self.condition!r}"


@dataclass(frozen=True)
class CInstance:
    """An immutable conditional instance.

    ``facts`` is a tuple of :class:`CFact`; ``global_condition``
    restricts the admissible valuations.
    """

    facts: tuple[CFact, ...]
    global_condition: Condition = TRUE_C

    def __post_init__(self):
        object.__setattr__(self, "facts", tuple(self.facts))
        arities: dict[str, int] = {}
        for fact in self.facts:
            known = arities.setdefault(fact.relation, len(fact.row))
            if known != len(fact.row):
                raise ValueError(
                    f"relation {fact.relation!r} used with arities {known} and {len(fact.row)}"
                )

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def from_instance(cls, instance: Instance) -> "CInstance":
        """Lift a naive database: every condition is ``⊤``."""
        return cls(tuple(CFact(name, row) for name, row in instance.facts()))

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------

    def nulls(self) -> frozenset[Null]:
        """Nulls in rows, fact conditions, and the global condition."""
        out: set[Null] = set(self.global_condition.nulls())
        for fact in self.facts:
            out.update(v for v in fact.row if isinstance(v, Null))
            out.update(fact.condition.nulls())
        return frozenset(out)

    def constants(self) -> frozenset[Hashable]:
        out: set[Hashable] = set(self.global_condition.constants())
        for fact in self.facts:
            out.update(v for v in fact.row if not isinstance(v, Null))
            out.update(fact.condition.constants())
        return frozenset(out)

    def relations(self) -> frozenset[str]:
        return frozenset(f.relation for f in self.facts)

    # ------------------------------------------------------------------
    # semantics
    # ------------------------------------------------------------------

    def world(self, valuation: Mapping[Null, Hashable]) -> Instance | None:
        """The complete world produced by ``valuation``.

        ``None`` when the valuation violates the global condition.
        Facts whose conditions fail are simply absent.
        """
        if not self.global_condition.satisfied(valuation):
            return None
        rows: dict[str, set[tuple]] = {}
        for fact in self.facts:
            if fact.condition.satisfied(valuation):
                image = tuple(
                    valuation.get(v, v) if isinstance(v, Null) else v for v in fact.row
                )
                rows.setdefault(fact.relation, set()).add(image)
        return Instance(rows)

    def worlds(self, pool: Sequence[Hashable]) -> Iterator[Instance]:
        """All distinct worlds over valuations into the constant pool."""
        seen: set[Instance] = set()
        nulls = sorted(self.nulls(), key=sort_key)
        for valuation in iter_mappings(nulls, list(pool)):
            world = self.world(valuation)
            if world is not None and world not in seen:
                seen.add(world)
                yield world

    def certain_answers(
        self,
        query,
        pool: Sequence[Hashable] | None = None,
    ) -> frozenset[tuple[Hashable, ...]]:
        """Certain answers of a :class:`~repro.logic.queries.Query` (CWA).

        The pool defaults to the c-instance's constants, the query's
        constants and ``|nulls|+1`` fresh constants (same genericity
        argument as :mod:`repro.core.certain`).
        """
        from repro.core.certain import default_pool
        from repro.logic.eval import evaluate

        if pool is None:
            # default_pool only needs .constants()/.nulls(), which
            # CInstance provides (including condition values)
            pool = default_pool(self, query)
        result: frozenset[tuple[Hashable, ...]] | None = None
        for world in self.worlds(pool):
            if result is None:
                result = query.eval_raw(world)
            elif query.is_boolean:
                if result and not evaluate(query.formula, world):
                    result = frozenset()
            else:
                adom = world.adom()
                result = frozenset(
                    row
                    for row in result
                    if all(v in adom for v in row)
                    and evaluate(query.formula, world, dict(zip(query.answer_vars, row)))
                )
            if not result:
                break
        if result is None:
            # the global condition admitted no valuation over the pool:
            # the represented set is empty, so everything is (vacuously)
            # certain — surfaced as an error because it is almost always
            # a modelling bug.
            raise ValueError("the global condition is unsatisfiable over the pool")
        return result

    def __repr__(self) -> str:
        body = "; ".join(repr(f) for f in self.facts)
        if isinstance(self.global_condition, type(TRUE_C)):
            return f"CInstance[{body}]"
        return f"CInstance[{body} | global: {self.global_condition!r}]"
