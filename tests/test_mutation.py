"""Incremental mutation: Instance.with_delta, derived indexes, the session
mutation API, per-relation generations and the generation-keyed result cache."""

import random

import pytest

from repro.core import evaluate
from repro.data.generate import random_instance
from repro.data.indexes import context_for, derive_context
from repro.data.instance import Instance
from repro.data.schema import Schema, SchemaError
from repro.data.values import Null
from repro.session import Database

X, Y = Null("x"), Null("y")

JOIN = "exists z (R(x, z) & S(z, y))"


def counting(monkeypatch, dotted, counter, key):
    """Wrap ``dotted`` (module.attr) so calls are counted in ``counter[key]``."""
    import importlib

    module_path, attr = dotted.rsplit(".", 1)
    module = importlib.import_module(module_path)
    real = getattr(module, attr)

    def wrapper(*args, **kwargs):
        counter[key] += 1
        return real(*args, **kwargs)

    monkeypatch.setattr(module, attr, wrapper)


class TestWithDelta:
    BASE = Instance({"R": [(1, 2), (2, 3)], "S": [(1,), (9,)]})

    def test_add_and_remove(self):
        new, changes = self.BASE.with_delta(
            adds={"R": [(3, 4)]}, removes={"S": [(9,)]}
        )
        assert new == Instance({"R": [(1, 2), (2, 3), (3, 4)], "S": [(1,)]})
        assert changes == {
            "R": (frozenset({(3, 4)}), frozenset()),
            "S": (frozenset(), frozenset({(9,)})),
        }

    def test_noop_returns_self(self):
        new, changes = self.BASE.with_delta(
            adds={"R": [(1, 2)]}, removes={"S": [(42,)], "Nope": [(1,)]}
        )
        assert new is self.BASE
        assert changes == {}

    def test_remove_then_add_same_row_is_present(self):
        new, changes = self.BASE.with_delta(
            adds={"S": [(9,)]}, removes={"S": [(9,)]}
        )
        assert new is self.BASE and changes == {}

    def test_relation_emptied_disappears(self):
        new, _ = self.BASE.with_delta(removes={"S": [(1,), (9,)]})
        assert "S" not in new.relations
        assert new.tuples("S") == frozenset()

    def test_full_replacement_may_change_arity(self):
        new, _ = self.BASE.with_delta(
            adds={"S": [(1, 2, 3)]}, removes={"S": [(1,), (9,)]}
        )
        assert new.arity("S") == 3

    def test_mixed_arity_rejected(self):
        with pytest.raises(SchemaError, match="mixed arities"):
            self.BASE.with_delta(adds={"S": [(1, 2)]})

    def test_zero_arity_rejected(self):
        with pytest.raises(SchemaError, match="zero-arity"):
            Instance.empty().with_delta(adds={"S": [()]})

    def test_bad_relation_name_rejected(self):
        with pytest.raises(SchemaError, match="non-empty string"):
            self.BASE.with_delta(adds={"": [(1,)]})

    def test_adom_tracked_incrementally_on_insert(self):
        new, _ = self.BASE.with_delta(adds={"R": [(7, X)]})
        assert new.adom() == self.BASE.adom() | {7, X}
        assert X in new.nulls()

    def test_adom_recomputed_on_delete(self):
        new, _ = self.BASE.with_delta(removes={"S": [(9,)]})
        assert 9 not in new.adom()
        assert 1 in new.adom()  # still occurs in R

    def test_matches_from_scratch_construction_randomly(self):
        rng = random.Random(0xDE17A)
        schema = Schema({"R": 2, "S": 1})
        inst = random_instance(schema, rng, n_facts=12, constants=(1, 2, 3), n_nulls=2)
        for _ in range(60):
            pool = [1, 2, 3, 4, X, Y]
            adds = {
                "R": [(rng.choice(pool), rng.choice(pool)) for _ in range(rng.randint(0, 2))],
                "S": [(rng.choice(pool),) for _ in range(rng.randint(0, 2))],
            }
            removes = {
                name: [row for row in inst.tuples(name) if rng.random() < 0.2]
                for name in inst.relations
            }
            new, _ = inst.with_delta(adds=adds, removes=removes)
            rels = {n: set(inst.tuples(n)) for n in inst.relations}
            for name, rows in removes.items():
                rels.setdefault(name, set()).difference_update(rows)
            for name, rows in adds.items():
                rels.setdefault(name, set()).update(rows)
            assert new == Instance(rels)
            assert new.adom() == Instance(rels).adom()
            inst = new


class TestDerivedIndexes:
    def test_untouched_relation_shares_index_object(self):
        inst = Instance({"R": [(1, 2), (2, 3)], "S": [(1,)]})
        ctx = context_for(inst)
        idx = ctx.index("R", (0,))
        new, changes = inst.with_delta(adds={"S": [(5,)]})
        derived = derive_context(inst, new, changes)
        assert derived.index("R", (0,)) is idx  # carried over, not rebuilt

    def test_touched_relation_patched_not_original(self):
        inst = Instance({"R": [(1, 2), (1, 3), (2, 3)]})
        ctx = context_for(inst)
        before = ctx.index("R", (0,))
        snapshot = {k: list(v) for k, v in before.items()}
        new, changes = inst.with_delta(
            adds={"R": [(1, 9), (4, 4)]}, removes={"R": [(1, 2)]}
        )
        derived = derive_context(inst, new, changes)
        patched = derived.index("R", (0,))
        # patched index ≡ an index built from scratch over the new rows
        fresh = context_for(Instance({"R": new.tuples("R")}))
        want = fresh.index("R", (0,))
        assert {k: set(map(tuple, v)) for k, v in patched.items()} == {
            k: set(map(tuple, v)) for k, v in want.items()
        }
        # the pre-mutation index is untouched (copy-on-write)
        assert {k: list(v) for k, v in ctx.index("R", (0,)).items()} == snapshot

    def test_emptied_bucket_removed(self):
        inst = Instance({"R": [(1, 2), (2, 3)]})
        ctx = context_for(inst)
        ctx.index("R", (0,))
        new, changes = inst.with_delta(removes={"R": [(1, 2)]})
        derived = derive_context(inst, new, changes)
        assert (1,) not in derived.index("R", (0,))

    def test_arity_change_drops_stale_index(self):
        inst = Instance({"R": [(1, 2, 3)]})
        ctx = context_for(inst)
        ctx.index("R", (2,))  # keyed on a position the new arity lacks
        new, changes = inst.with_delta(
            adds={"R": [(7, 8)]}, removes={"R": [(1, 2, 3)]}
        )
        derived = derive_context(inst, new, changes)
        assert derived.index("R", (0,)) == {(7,): [(7, 8)]}

    def test_compiled_answers_match_fresh_instance(self):
        from repro.logic.compile import compiled_query
        from repro.session import as_query

        rng = random.Random(77)
        inst = random_instance(
            Schema({"R": 2, "S": 1}), rng, n_facts=10, constants=(1, 2, 3), n_nulls=2
        )
        cq = compiled_query(as_query("exists z (R(x, z) & S(z))", vars=("x",)))
        cq.answers(inst)  # build indexes on the old context
        for step in range(25):
            adds = {"R": [(rng.randint(1, 4), rng.randint(1, 4))]}
            removes = {
                "R": [row for row in inst.tuples("R") if rng.random() < 0.15]
            }
            new, changes = inst.with_delta(adds=adds, removes=removes)
            derive_context(inst, new, changes)
            assert cq.answers(new) == cq.answers(Instance({
                n: new.tuples(n) for n in new.relations
            }))
            inst = new


class TestSessionMutation:
    def test_insert_delete_counts(self):
        db = Database({"R": [(1, 2)]})
        assert db.insert("R", (1, 2)) == 0  # already present
        assert db.insert("R", (2, 3), (3, 4)) == 2
        assert db.delete("R", (9, 9)) == 0
        assert db.delete("R", (2, 3)) == 1
        assert db.instance == Instance({"R": [(1, 2), (3, 4)]})

    def test_apply_delta_is_one_generation(self):
        db = Database({"R": [(1, 2)], "S": [(1,)]})
        g = db.generation
        changed = db.apply_delta(
            adds={"R": [(5, 6)], "T": [(7,)]}, removes={"S": [(1,)]}
        )
        assert changed == 3
        assert db.generation == g + 1
        assert db.rel_generation("R") == 1
        assert db.rel_generation("S") == 1
        assert db.rel_generation("T") == 1

    def test_per_relation_generations(self):
        db = Database({"R": [(1, 2)], "S": [(1,)]})
        db.insert("R", (2, 3))
        db.insert("R", (3, 4))
        db.insert("S", (2,))
        assert db.rel_generation("R") == 2
        assert db.rel_generation("S") == 1
        assert db.rel_generation("T") == 0
        assert db.generation == 3

    def test_noop_delta_bumps_nothing(self):
        db = Database({"R": [(1, 2)]})
        g = db.generation
        assert db.apply_delta(adds={"R": [(1, 2)]}) == 0
        assert db.generation == g and db.rel_generation("R") == 0

    def test_null_carrying_mutation(self):
        db = Database({"R": [(1, X)]}, semantics="cwa")
        q = db.query("exists z (R(x, z) & S(z))", vars=("x",))
        assert not q.evaluate().holds
        db.insert("S", (X,))  # a null-carrying fact
        assert q.evaluate().answers == frozenset({(1,)})

    def test_mutated_session_matches_fresh_database(self):
        rng = random.Random(0x5E55)
        db = Database({"R": [(1, X)], "S": [(X, 4)]}, semantics="cwa")
        q = db.query(JOIN, vars=("x", "y"))
        pool = [1, 2, 3, 4, X, Y]
        for _ in range(20):
            if rng.random() < 0.6:
                db.insert(
                    rng.choice(["R", "S"]), (rng.choice(pool), rng.choice(pool))
                )
            else:
                name = rng.choice(["R", "S"])
                rows = list(db.instance.tuples(name))
                if rows:
                    db.delete(name, rng.choice(rows))
            want = evaluate(q.query, db.instance, "cwa").answers
            assert q.evaluate().answers == want
            assert q.evaluate("enumeration").answers == want


class TestPlanSurvival:
    def test_plan_survives_unrelated_write(self):
        db = Database({"R": [(1, 2)], "S": [(2, 3)], "T": [(9,)]})
        q = db.query(JOIN, vars=("x", "y"))
        plan = q.plan()
        db.insert("T", (10,))
        assert q.plan() is plan  # T is not mentioned by the query
        db.insert("R", (5, 6))
        assert q.plan() is not plan  # R is

    def test_core_dependent_plan_invalidated_by_any_write(self):
        db = Database(Instance({"D": [(X, X), (X, 1)]}), semantics="mincwa")
        q = db.query("exists v . D(v, v)")
        plan = q.plan()
        assert plan.verdict.over_cores_only
        db.insert("Unrelated", (1,))
        assert q.plan() is not plan  # core-ness is a whole-instance property


class TestResultCache:
    def test_hit_on_unrelated_write(self, monkeypatch):
        """The acceptance criterion: insert/delete on a relation the plan
        does not read leaves the cached result valid — a cache hit, no
        backend execution."""
        counts = {"exec": 0}
        counting(monkeypatch, "repro.core.naive.naive_eval", counts, "exec")
        db = Database({"R": [(1, 2), (2, 3)], "S": [(2, 4)], "T": [(9,)]})
        q = db.query(JOIN, vars=("x", "y"))
        first = q.evaluate()
        assert first.stats["result_cache"] == "miss"
        assert counts["exec"] == 1
        db.insert("T", (10,))
        db.delete("T", (9,))
        again = q.evaluate()
        assert again.stats["result_cache"] == "hit"
        assert again.answers == first.answers
        assert again.stats["execution_s"] == 0.0
        assert counts["exec"] == 1  # no recompute
        assert again.stats["generations"] == {"R": 0, "S": 0}

    def test_miss_on_read_relation_write(self):
        db = Database({"R": [(1, 2), (2, 3)], "S": [(2, 4)]})
        q = db.query(JOIN, vars=("x", "y"))
        q.evaluate()
        db.insert("S", (3, 7))
        result = q.evaluate()
        assert result.stats["result_cache"] == "miss"
        assert (2, 7) in result.answers

    def test_enumeration_cached_under_cwa(self, monkeypatch):
        counts = {"oracle": 0}
        counting(monkeypatch, "repro.core.certain.certain_answers", counts, "oracle")
        db = Database({"R": [(1, X)], "T": [(5,)]}, semantics="cwa")
        q = db.query("exists z (R(x, z))", vars=("x",))
        q.evaluate("enumeration")
        db.insert("T", (6,))
        result = q.evaluate("enumeration")
        assert result.stats["result_cache"] == "hit"
        assert counts["oracle"] == 1

    def test_enumeration_uncached_outside_substitution_only(self):
        db = Database({"D": [(X, Y)]}, semantics="owa", extra_facts=1)
        result = db.evaluate("exists x (D(x, x))", mode="enumeration")
        assert result.stats["result_cache"] == "uncacheable"

    def test_adom_dependent_plan_uncacheable(self):
        db = Database({"D": [(1, 2)]}, semantics="cwa")
        result = db.evaluate("forall x . exists y . D(x, y)")
        assert result.stats["result_cache"] == "uncacheable"

    def test_replace_invalidates_everything(self):
        db = Database({"R": [(1, 2)]})
        q = db.query("R(x, y)", vars=("x", "y"))
        assert q.evaluate().answers == frozenset({(1, 2)})
        db.replace({"R": [(7, 8)]})
        result = q.evaluate()
        assert result.stats["result_cache"] == "miss"
        assert result.answers == frozenset({(7, 8)})

    def test_cache_disabled_by_size_zero(self):
        db = Database({"R": [(1, 2)]}, result_cache_size=0)
        q = db.query("R(x, y)", vars=("x", "y"))
        q.evaluate()
        assert q.evaluate().stats["result_cache"] == "uncacheable"
        assert db.cache_stats["entries"] == 0

    def test_lru_eviction_is_bounded(self):
        db = Database({"R": [(1, 2)]}, result_cache_size=2)
        for i in range(5):
            db.evaluate(f"exists x (R(x, {i}))")
        stats = db.cache_stats
        assert stats["entries"] <= 2
        assert stats["evictions"] >= 3

    def test_cache_stats_counters(self):
        db = Database({"R": [(1, 2)]})
        q = db.query("R(x, y)", vars=("x", "y"))
        q.evaluate()
        q.evaluate()
        q.evaluate()
        stats = db.cache_stats
        assert stats["hits"] == 2 and stats["misses"] == 1

    def test_batch_path_hits_cache_too(self):
        db = Database({"R": [(1, 2)], "T": [(1,)]})
        texts = ["exists x (R(x, y))", "R(x, y)"]
        first = db.evaluate_many(texts)
        db.insert("T", (2,))
        second = db.evaluate_many(texts)
        assert all(r.stats["result_cache"] == "miss" for r in first)
        assert all(r.stats["result_cache"] == "hit" for r in second)
        assert [r.answers for r in first] == [r.answers for r in second]
        assert all(r.stats["batch"] is True for r in second)

    def test_single_and_batch_paths_share_entries(self):
        db = Database({"R": [(1, 2)]})
        db.evaluate("R(x, y)", vars=("x", "y"))
        (batched,) = db.evaluate_many([db.query("R(x, y)", vars=("x", "y"))])
        assert batched.stats["result_cache"] == "hit"

    def test_plan_notes_cache_eligibility(self):
        db = Database({"R": [(1, 2)], "S": [(2, 4)]})
        eligible = db.explain(JOIN, vars=("x", "y"))
        assert any("result-cache eligible" in n for n in eligible.notes)
        adom_dep = db.explain("forall x . exists y . R(x, y)")
        assert not any("result-cache eligible" in n for n in adom_dep.notes)

    def test_hit_preserves_exactness_flags(self):
        db = Database({"R": [(1, X)]}, semantics="cwa")
        q = db.query("exists z (R(x, z))", vars=("x",))
        first = q.evaluate()
        second = q.evaluate()
        assert second.stats["result_cache"] == "hit"
        assert (second.exact, second.direction, second.method) == (
            first.exact, first.direction, first.method
        )
