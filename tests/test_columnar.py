"""Differential suite for the columnar engine: columnar ≡ compiled ≡ interp.

The columnar executor (:mod:`repro.logic.columnar` over
:mod:`repro.data.dictionary`) reuses the compiled operator DAG but runs
it over dictionary-encoded int columns, with sort-merge/semi-join array
kernels and stats-driven join ordering.  Every behavioural claim is
pinned differentially here, over the same generators as
``tests/test_compile.py`` (shared via ``tests/diffutil.py``):

* random formulas × random instances, all three engines bit-for-bit
  (the stats-specialised plan is additionally checked against the
  shared plan inside ``diffutil.engine_answers``);
* all six semantics against the interpreted world-by-world oracle;
* dictionary round-trips, interning stability across ``with_delta`` /
  ``replace`` / snapshot-restore, and the null/``"?x"``/``"??x"``
  distinctions through the JSON codec;
* mutation re-encoding invariants (shared :class:`EncodedRelation`
  identity for untouched relations, agreement after re-encode);
* the pure-Python kernels with numpy forced off;
* ``EvalResult.stats`` key parity across backends (regression gate);
* the int-array ``WorldSpec`` transport for oracle workers.
"""

import pickle

import pytest
from diffutil import (
    SCHEMA,
    arbitrary_case,
    assert_equivalent,
    fuzz_rng,
    fuzz_trials,
    interp_certain_reference,
)

from repro.core.certain import _build_spec, certain_answers, default_pool
from repro.core.naive import naive_eval
from repro.data.dictionary import (
    Dictionary,
    EncodedRelation,
    columnar_context,
    derive_columnar,
)
from repro.data.generate import random_instance
from repro.data.instance import Instance
from repro.data.values import Null
from repro.logic import kernels
from repro.logic.ast import And, Not, RelAtom, Var
from repro.logic.columnar import (
    as_columnar_context,
    columnar_naive_eval,
    columnar_query,
)
from repro.logic.compile import compiled_query
from repro.logic.generate import random_kary_query, random_sentence
from repro.logic.parser import parse
from repro.logic.queries import Query
from repro.semantics import get_semantics
from repro.session import Database

X, Y = Null("x"), Null("y")
x, y, z = Var("x"), Var("y"), Var("z")

ENGINES = ("compiled", "columnar")


# ----------------------------------------------------------------------
# the dictionary itself
# ----------------------------------------------------------------------

class TestDictionary:
    def test_round_trip_constants_and_nulls(self):
        d = Dictionary()
        cells = [1, "a", 2.5, ("t", 1), X, Y, Null("long-label")]
        codes = [d.encode(v) for v in cells]
        assert [d.decode(c) for c in codes] == cells
        assert d.decode_row(d.encode_row((1, X, "a"))) == (1, X, "a")

    def test_parity_split(self):
        d = Dictionary()
        for v in (1, "a", X, 2, Y):
            code = d.encode(v)
            assert Dictionary.is_null_code(code) == isinstance(v, Null)
        assert d.const_count() == 3 and d.null_count() == 2
        assert len(d) == 5

    def test_codes_stable_under_reencoding(self):
        d = Dictionary()
        first = [d.encode(v) for v in (1, X, "a")]
        d.encode("new"), d.encode(Null("new"))
        assert [d.encode(v) for v in (1, X, "a")] == first

    def test_try_encode_never_interns(self):
        d = Dictionary()
        assert d.try_encode("unseen") is None
        assert len(d) == 0
        code = d.encode("seen")
        assert d.try_encode("seen") == code

    def test_true_and_one_conflate_like_frozensets(self):
        # {(1,), (True,)} is a ONE-element frozenset; the dictionary must
        # intern 1 and True to one code or decoded row sets would differ
        d = Dictionary()
        assert d.encode(1) == d.encode(True) == d.encode(1.0)
        assert frozenset({(1,), (True,)}) == frozenset({(d.decode(d.encode(True)),)})

    def test_export_import_tables(self):
        d = Dictionary()
        for v in (1, X, "a", Y):
            d.encode(v)
        consts, labels = d.export_tables()
        back = Dictionary.from_tables(consts, labels)
        for v in (1, X, "a", Y):
            assert back.encode(v) == d.encode(v)


class TestEncodedRelation:
    REL = frozenset({(1, X), (2, 3), (X, Y), (2, X)})

    def test_columns_decode_to_rows(self):
        d = Dictionary()
        rel = EncodedRelation.from_rows(self.REL, d)
        assert rel.arity == 2 and rel.n_rows == 4
        assert frozenset(map(d.decode_row, rel.row_set())) == self.REL

    def test_index_and_key_set(self):
        d = Dictionary()
        rel = EncodedRelation.from_rows(self.REL, d)
        two = d.encode(2)
        idx = rel.index((0,))
        assert frozenset(map(d.decode_row, idx[(two,)])) == {(2, 3), (2, X)}
        assert rel.key_set(0) == frozenset(r[0] for r in rel.row_set())
        assert rel.distinct(0) == 3  # 1, 2, ⊥x

    def test_sorted_rows_sorted_by_code(self):
        d = Dictionary()
        rel = EncodedRelation.from_rows(self.REL, d)
        runs = rel.sorted_rows(1)
        assert [r[1] for r in runs] == sorted(r[1] for r in rel.row_set())
        assert rel.sorted_rows(1) is runs  # memoised

    @pytest.mark.skipif(not kernels.numpy_enabled(), reason="numpy unavailable")
    def test_np_order_matches_pure_sort(self):
        d = Dictionary()
        rel = EncodedRelation.from_rows(self.REL, d)
        order, srt = rel.np_order(0)
        assert list(srt) == sorted(rel.columns[0])
        assert [rel.row_tuples()[i][0] for i in order] == list(srt)


class TestColumnarContext:
    def test_lazy_per_relation_encoding(self):
        inst = Instance({"R": [(1, X)], "S": [(2,)], "T": [(3, 4, 5)]})
        cctx = columnar_context(inst)
        assert cctx._encoded == {}  # binding is O(1)
        cctx.encoded("R")
        assert set(cctx._encoded) == {"R"}  # only the touched relation paid
        assert cctx.encoded("missing") is None

    def test_context_cached_on_instance(self):
        inst = Instance({"R": [(1, 2)]})
        assert columnar_context(inst) is columnar_context(inst)
        assert as_columnar_context(inst) is columnar_context(inst)

    def test_as_columnar_context_rejects_junk(self):
        with pytest.raises(TypeError):
            as_columnar_context({"R": [(1, 2)]})

    def test_adom_codes_decode_to_adom(self):
        inst = Instance({"R": [(1, X)], "S": [("a",)]})
        cctx = columnar_context(inst)
        assert frozenset(map(cctx.dictionary.decode, cctx.adom_codes())) == inst.adom()

    def test_stats_key_buckets_to_powers_of_two(self):
        inst = Instance({"R": [(i, i + 1) for i in range(5)], "S": [(1,)]})
        key = dict(columnar_context(inst).stats_key())
        assert key["R"] == 8 and key["S"] == 1
        assert key["%adom"] == 8  # 6 adom values round up to 8

    def test_stats_key_stable_under_small_growth(self):
        # bucketing means a one-row insert rarely re-plans
        a = Instance({"R": [(i, i) for i in range(5)]})
        b = Instance({"R": [(i, i) for i in range(6)]})
        assert columnar_context(a).stats_key() == columnar_context(b).stats_key()


# ----------------------------------------------------------------------
# differential property tests: columnar ≡ compiled ≡ interpreter
# ----------------------------------------------------------------------

class TestDifferentialRandom:
    @pytest.mark.parametrize(
        "fragment", ["EPos", "Pos", "PosForallG", "EPosForallGBool"]
    )
    def test_fragment_sentences(self, fragment):
        rng = fuzz_rng("col-" + fragment)
        for _ in range(fuzz_trials(60)):
            inst = random_instance(
                SCHEMA, rng, n_facts=rng.randint(0, 5), constants=(1, 2, 3), n_nulls=2
            )
            phi = random_sentence(SCHEMA, rng, fragment, max_depth=3)
            assert_equivalent(phi, inst, engines=ENGINES)

    @pytest.mark.parametrize("arity", [1, 2])
    def test_fragment_kary_queries(self, arity):
        rng = fuzz_rng(9100 + arity)
        for _ in range(fuzz_trials(60)):
            inst = random_instance(
                SCHEMA, rng, n_facts=rng.randint(0, 5), constants=(1, 2), n_nulls=2
            )
            q = random_kary_query(SCHEMA, rng, "EPos", arity=arity, max_depth=2)
            assert_equivalent(q.formula, inst, q.answer_vars, engines=ENGINES)

    def test_arbitrary_formulas_with_negation(self):
        """Unrestricted ASTs: negation, →, =, constants — the unsafe zone."""
        rng = fuzz_rng(20130624)
        for _ in range(fuzz_trials(450)):
            phi, head, inst = arbitrary_case(rng)
            assert_equivalent(phi, inst, head, engines=ENGINES)

    def test_naive_eval_engine_agreement(self):
        rng = fuzz_rng(424242)
        for _ in range(fuzz_trials(60)):
            inst = random_instance(
                SCHEMA, rng, n_facts=rng.randint(1, 6), constants=(1, 2, 3), n_nulls=2
            )
            q = random_kary_query(SCHEMA, rng, "EPos", arity=1, max_depth=2)
            col = naive_eval(q, inst, engine="columnar")
            assert col == naive_eval(q, inst, engine="compiled")
            assert col == naive_eval(q, inst, engine="interp")

    @pytest.mark.parametrize("key", ["owa", "cwa", "wcwa", "pcwa", "mincwa", "minpcwa"])
    def test_certain_answers_differential_per_semantics(self, key):
        """Full engine (columnar-routed naive + oracle) ≡ the interpreted
        world-by-world intersection, under every semantics."""
        sem = get_semantics(key)
        extra = {"owa": 1, "wcwa": 1}.get(key)
        rng = fuzz_rng("col-" + key)
        for _ in range(fuzz_trials(8)):
            inst = random_instance(
                SCHEMA, rng, n_facts=rng.randint(1, 3), constants=(1, 2), n_nulls=2
            )
            q = Query.boolean(random_sentence(SCHEMA, rng, "PosForallG", max_depth=2))
            want = interp_certain_reference(q, inst, sem, extra_facts=extra)
            db = Database(inst, semantics=key, extra_facts=extra)
            result = db.evaluate(q)
            if result.exact:
                assert result.answers == want, (key, q.formula, inst)
            oracle = certain_answers(q, inst, sem, extra_facts=extra)
            assert oracle == want, (key, q.formula, inst)

    def test_pure_kernels_differential(self, monkeypatch):
        """The pure-Python sort-merge/semi-join paths, numpy forced off."""
        monkeypatch.setattr(kernels, "_np", None)
        assert kernels.kernel_suffix() == "pure"
        rng = fuzz_rng(777)
        for _ in range(fuzz_trials(100)):
            phi, head, inst = arbitrary_case(rng)
            assert_equivalent(phi, inst, head, engines=("columnar",))

    @pytest.mark.parametrize("pure", [False, True])
    def test_fused_project_join_kernel(self, monkeypatch, pure):
        """Projection fused into the sort-merge kernel: a many-to-many
        join whose projection collapses the expansion must agree with
        the compiled engine on both kernel implementations."""
        if pure:
            monkeypatch.setattr(kernels, "_np", None)
        elif not kernels.numpy_enabled():
            pytest.skip("numpy unavailable")
        rng = fuzz_rng(959)
        q = Query(parse("exists y (R(x, z) & S(z, y))"), ("x", "z"))
        n = kernels.MIN_VECTOR_ROWS * 3
        nulls = [X, Y, Null("k")]
        inst = Instance({
            "R": [(rng.randint(0, 9), rng.choice(nulls)) for _ in range(n)],
            "S": [(rng.choice(nulls), rng.randint(0, 9)) for _ in range(n)],
        })
        colq = columnar_query(q, inst)
        assert colq.answers(inst) == compiled_query(q).answers(inst)
        assert naive_eval(q, inst, engine="columnar") == naive_eval(
            q, inst, engine="compiled"
        )
        # nullary projection of a non-empty join (boolean shape)
        b = Query.boolean(parse("exists x, z, y (R(x, z) & S(z, y))"))
        assert naive_eval(b, inst, engine="columnar") == naive_eval(
            b, inst, engine="compiled"
        )

    @pytest.mark.skipif(not kernels.numpy_enabled(), reason="numpy unavailable")
    def test_vector_kernels_above_threshold(self):
        """Joins big enough to engage the vectorised sort-merge kernel."""
        rng = fuzz_rng(888)
        q = Query(parse("exists z (R(a, z) & S(z, b))"), ("a", "b"))
        for _ in range(fuzz_trials(5)):
            n = kernels.MIN_VECTOR_ROWS * 2
            rows_r = [(rng.randint(0, 40), rng.choice([rng.randint(0, 30), X, Y]))
                      for _ in range(n)]
            rows_s = [(rng.choice([rng.randint(0, 30), X, Y]), rng.randint(0, 40))
                      for _ in range(n)]
            inst = Instance({"R": rows_r, "S": rows_s})
            colq = columnar_query(q, inst)
            assert "sort-merge-join [vector]" in colq.describe()
            assert colq.answers(inst) == compiled_query(q).answers(inst)
            assert naive_eval(q, inst, engine="columnar") == naive_eval(
                q, inst, engine="compiled"
            )


# ----------------------------------------------------------------------
# dictionary edge cases (nulls vs "?x" constants, interning stability)
# ----------------------------------------------------------------------

class TestDictionaryEdgeCases:
    def test_null_vs_escaped_question_constant(self):
        """``"?x"`` decodes to ⊥x, ``"??x"`` to the *constant* ``"?x"`` —
        the dictionary must keep all three worlds apart."""
        from repro.data.jsonio import instance_from_json, instance_to_json

        inst = instance_from_json('{"R": [["?x", "??x"], ["??x", "?x"]]}')
        assert inst.tuples("R") == frozenset({(Null("x"), "?x"), ("?x", Null("x"))})
        cctx = columnar_context(inst)
        d = cctx.dictionary
        null_code, const_code = d.encode(Null("x")), d.encode("?x")
        assert null_code != const_code
        assert Dictionary.is_null_code(null_code)
        assert not Dictionary.is_null_code(const_code)
        # naive evaluation sees them apart: only the null row is dropped
        q = Query(parse("R(a, b)"), ("a", "b"))
        assert naive_eval(q, inst, engine="columnar") == naive_eval(
            q, inst, engine="compiled"
        ) == frozenset()
        # and a full JSON round-trip re-encodes to the same codes
        again = instance_from_json(instance_to_json(inst))
        cctx2 = columnar_context(again, dictionary=d)
        assert frozenset(
            map(d.decode_row, cctx2.encoded("R").row_set())
        ) == again.tuples("R")

    def test_interning_stable_across_with_delta(self):
        db = Database({"R": [(1, X)], "S": [(2,)]})
        db.evaluate("exists z . R(a, z)", vars=("a",))  # force encoding
        d = db.instance._cols.dictionary
        before = {v: d.encode(v) for v in (1, 2, X)}
        db.insert("R", (3, Y))
        db.delete("S", (2,))
        after_dict = db.instance._cols.dictionary
        assert after_dict is d  # one dictionary along the chain
        assert {v: after_dict.encode(v) for v in (1, 2, X)} == before

    def test_interning_stable_across_replace(self):
        db = Database({"R": [(1, X)]})
        db.evaluate("R(a, b)", vars=("a", "b"))
        d = db.instance._cols.dictionary
        code_x = d.encode(X)
        db.replace({"R": [(5, X)], "S": [(6,)]})
        assert db.instance._cols is not None
        assert db.instance._cols.dictionary is d
        assert d.encode(X) == code_x
        assert db.evaluate("R(a, b)", vars=("a", "b")).answers == frozenset()

    def test_interning_stable_across_restore(self):
        db = Database({"R": [(1, X)]})
        db.evaluate("R(a, b)", vars=("a", "b"))
        d = db.instance._cols.dictionary
        db.restore(Instance({"R": [(2, 3)]}), generation=9, rel_generations={"R": 9})
        assert db.instance._cols.dictionary is d
        assert db.evaluate("R(a, b)", vars=("a", "b")).answers == frozenset({(2, 3)})

    def test_untouched_relations_share_encoded_objects(self):
        """`with_delta` carry-over: untouched relations keep the SAME
        EncodedRelation (indexes, sort runs and all); touched ones
        re-encode lazily and agree with the new row set."""
        old = Instance({"R": [(1, X), (2, 3)], "S": [(2,), (4,)]})
        cctx = columnar_context(old)
        shared = cctx.encoded("S")
        shared.index((0,))  # build something worth keeping
        new, changes = old.with_delta(adds={"R": [(9, 9)]})
        derived = derive_columnar(old, new, changes)
        assert derived is new._cols
        assert derived.dictionary is cctx.dictionary
        assert derived.encoded("S") is shared  # identity, caches included
        re_encoded = derived.encoded("R")
        assert re_encoded is not cctx.encoded("R")
        assert frozenset(
            map(derived.dictionary.decode_row, re_encoded.row_set())
        ) == new.tuples("R")

    def test_derive_noop_when_never_encoded(self):
        old = Instance({"R": [(1, 2)]})
        new, changes = old.with_delta(adds={"R": [(3, 4)]})
        assert derive_columnar(old, new, changes) is None
        assert new._cols is None  # engines that never ran columnar pay nothing

    def test_encoded_rows_agree_after_index_carry_over(self):
        """The row context (`derive_context`) and the columnar context
        must both survive a session mutation and agree on content."""
        from repro.data.indexes import context_for

        db = Database({"R": [(1, X), (2, 3)], "S": [(3,), (X,), (2,)]})
        q = db.query("exists z (R(a, z) & S(z))", vars=("a",))
        first = q.evaluate().answers
        assert first == frozenset({(1,), (2,)})
        db.insert("R", (4, 2))
        inst = db.instance
        ctx, cctx = context_for(inst), columnar_context(inst)
        for name in ("R", "S"):
            decoded = frozenset(
                map(cctx.dictionary.decode_row, cctx.encoded(name).row_set())
            )
            assert decoded == ctx.rows(name) == inst.tuples(name)
        assert q.evaluate().answers == frozenset({(1,), (2,), (4,)})

    def test_mutation_differential_chain(self):
        """A random insert/delete chain: after every step, columnar ≡
        compiled ≡ interp on a fixed query battery."""
        rng = fuzz_rng(606)
        queries = [
            (parse("exists z (R(a, z) & S(z))"), (Var("a"),)),
            (parse("R(a, b)"), (Var("a"), Var("b"))),
            (And((RelAtom("R", (x, y)), Not(RelAtom("S", (y,))))), (x, y)),
        ]
        db = Database({"R": [(1, X)], "S": [(2,)]})
        for step in range(fuzz_trials(12)):
            if rng.random() < 0.7:
                db.insert("R", (rng.randint(0, 4), rng.choice([rng.randint(0, 4), X, Y])))
                db.insert("S", (rng.randint(0, 4),))
            else:
                rows = sorted(db.instance.tuples("R"))
                if rows:
                    db.delete("R", rng.choice(rows))
            inst = db.instance
            for phi, head in queries:
                assert_equivalent(phi, inst, head, engines=ENGINES)


# ----------------------------------------------------------------------
# stats parity across backends (the fix-then-pin regression test)
# ----------------------------------------------------------------------

class TestStatsParity:
    QUERY = "exists z (R(a, z) & S(z, b))"

    def _stats(self, mode):
        db = Database({"R": [(1, X)], "S": [(X, 4)]}, semantics="owa")
        miss = db.evaluate(self.QUERY, vars=("a", "b"), mode=mode)
        hit = db.evaluate(self.QUERY, vars=("a", "b"), mode=mode)
        return miss, hit

    def test_stats_keys_identical_across_backends(self):
        """Harness and dashboards read EvalResult.stats by key: every
        naive-family backend must emit the SAME key set, hit and miss."""
        auto_miss, auto_hit = self._stats("auto")
        assert auto_miss.method == "columnar"
        ref_keys = set(auto_miss.stats)
        assert set(auto_hit.stats) == ref_keys
        for mode in ("compiled", "naive", "naive-interp"):
            miss, hit = self._stats(mode)
            assert set(miss.stats) == ref_keys, mode
            assert set(hit.stats) == ref_keys, mode

    def test_timing_keys_present_and_numeric(self):
        miss, _ = self._stats("auto")
        for key in ("planning_s", "execution_s"):
            assert isinstance(miss.stats[key], float) and miss.stats[key] >= 0

    def test_evaluate_many_stats_keys_match_single(self):
        db = Database({"R": [(1, X)], "S": [(X, 4)]}, semantics="owa")
        single = db.evaluate(self.QUERY)
        batch = db.evaluate_many([self.QUERY])
        assert batch[0].method == "columnar"
        # batch results carry the single-evaluation keys plus exactly the
        # two batch-only fields — nothing may silently disappear
        assert set(batch[0].stats) - set(single.stats) == {"batch", "pool_build_s"}
        assert set(single.stats) <= set(batch[0].stats)

    def test_answers_identical_across_naive_backends(self):
        results = {
            mode: self._stats(mode)[0].answers
            for mode in ("auto", "compiled", "naive", "naive-interp")
        }
        assert len(set(results.values())) == 1, results


# ----------------------------------------------------------------------
# the int-array WorldSpec transport for oracle workers
# ----------------------------------------------------------------------

class TestWorldSpecTransport:
    def _spec(self):
        inst = Instance(
            {"R": [(1, X), (X, Y), (2, 3)], "S": [(Y,), (4,)], "T": [(1, 2, 3)]}
        )
        q = Query(parse("exists z (R(a, z) & S(z))"), ("a",))
        cq = compiled_query(q)
        pool = default_pool(inst, q)
        spec, _, _ = _build_spec(
            cq, inst, get_semantics("cwa"), pool, pool[-3:], 10**6
        )
        return spec

    def test_pickle_round_trip_is_lossless(self):
        spec = self._spec()
        back = pickle.loads(pickle.dumps(spec))
        for slot in WorldSpecSlots:
            if slot == "cq":
                assert back.cq.formula == spec.cq.formula
                assert back.cq.answer_vars == spec.cq.answer_vars
            else:
                assert getattr(back, slot) == getattr(spec, slot), slot

    def test_round_tripped_spec_runs_identically(self):
        spec = self._spec()
        back = pickle.loads(pickle.dumps(spec))
        vals = list(spec.seed_valuations())
        assert back.run(vals) == spec.run(vals)

    def test_payload_ships_no_null_objects(self):
        """The transport's point: no per-row Null object graphs on the
        wire — nulls travel once, as labels in the dictionary tables."""
        blob = pickle.dumps(self._spec())
        assert b"repro.data.values" not in blob

    def test_parallel_oracle_agrees_with_serial(self):
        inst = Instance({"R": [(1, X), (X, Y), (2, 3)], "S": [(Y,), (4,)]})
        q = Query(parse("exists z (R(a, z) & S(z))"), ("a",))
        sem = get_semantics("cwa")
        serial = certain_answers(q, inst, sem)
        parallel = certain_answers(q, inst, sem, workers=2)
        assert serial == parallel


WorldSpecSlots = (
    "cq", "templates", "dyn_names", "static", "base_adom",
    "read_base_cells", "n_slots", "base_choices", "fresh_tail",
    "seed", "seed_keys",
)


# ----------------------------------------------------------------------
# plan specialisation and EXPLAIN
# ----------------------------------------------------------------------

class TestPlansAndExplain:
    def test_shared_plan_reuses_compiled_dag(self):
        q = Query(parse("exists z (R(a, z) & S(z, b))"), ("a", "b"))
        assert columnar_query(q).cq is compiled_query(q)

    def test_stats_specialised_plan_memoised(self):
        q = Query(parse("exists z (R(a, z) & S(z, b))"), ("a", "b"))
        inst = Instance({"R": [(1, 2)], "S": [(2, 3)]})
        assert columnar_query(q, inst).cq is columnar_query(q, inst).cq

    def test_stats_put_smaller_relation_first(self):
        q = Query.boolean(parse("exists u, v, w (R(u, v) & S(v, w))"))
        big_r = Instance({"R": [(i, i % 7) for i in range(64)], "S": [(1, 2)]})
        big_s = Instance({"S": [(i, i % 7) for i in range(64)], "R": [(1, 2)]})
        assert columnar_query(q, big_r).join_order()[0] == "S"
        assert columnar_query(q, big_s).join_order()[0] == "R"
        # ...and neither ordering may change answers
        for inst in (big_r, big_s):
            assert_equivalent(q.formula, inst, engines=ENGINES)

    def test_describe_names_kernels(self):
        q = Query(parse("exists z (R(a, z) & S(z, b))"), ("a", "b"))
        text = columnar_query(q).describe()
        assert "sort-merge-join" in text
        assert "col-scan R/2" in text and "col-scan S/2" in text

    def test_describe_names_semi_join_kernel(self):
        q = Query(parse("exists z . R(a, z) & (exists w . S(z, w))"), ("a",))
        text = columnar_query(q).describe()
        assert "semi-join" in text or "sort-merge-join" in text

    def test_explain_cli_names_kernels_and_join_order(self, capsys, tmp_path):
        import json as _json

        from repro.cli import main

        db = tmp_path / "db.json"
        db.write_text(_json.dumps({"R": [[1, "?1"]], "S": [["?1", 4]]}))
        code = main(
            ["explain", "exists z (R(x,z) & S(z,y))", str(db),
             "--semantics", "owa", "--operators"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "backend     : columnar" in out
        assert "sort-merge-join" in out
        assert "join order: R ⋈ S" in out or "join order: S ⋈ R" in out

    def test_plan_note_mentions_columnar_kernels(self):
        db = Database({"R": [(1, X)], "S": [(X, 4)]}, semantics="owa")
        plan = db.explain("exists z (R(a, z) & S(z, b))", vars=("a", "b"))
        assert plan.backend == "columnar"
        assert any("columnar" in note for note in plan.notes)

    def test_forced_compiled_and_interp_still_route(self):
        db = Database({"R": [(1, X)], "S": [(X, 4)]}, semantics="owa")
        for mode in ("compiled", "naive-interp"):
            result = db.evaluate(
                "exists z (R(a, z) & S(z, b))", vars=("a", "b"), mode=mode
            )
            assert result.method == mode
            assert result.answers == frozenset({(1, 4)})

    def test_raw_codes_decode_to_answers(self):
        inst = Instance({"R": [(1, 2), (X, 2)]})
        colq = columnar_query(Query(parse("R(a, b)"), ("a", "b")))
        cctx = columnar_context(inst)
        codes = colq.raw_codes(cctx)
        assert frozenset(map(cctx.dictionary.decode_row, codes)) == inst.tuples("R")
        assert colq.naive_answers(cctx) == frozenset({(1, 2)})

    def test_columnar_naive_eval_entry_point(self):
        inst = Instance({"R": [(1, 2), (X, 2)]})
        q = Query(parse("R(a, b)"), ("a", "b"))
        assert columnar_naive_eval(q, inst) == frozenset({(1, 2)})
        with pytest.raises(ValueError, match="unknown naive engine"):
            naive_eval(q, inst, engine="vectorised")
