"""Unit tests for repro.data.values: nulls, factories, classification."""

from repro.data.values import (
    Null,
    NullFactory,
    constants_in,
    fresh_nulls,
    is_const,
    is_null,
    nulls_in,
    sort_key,
)


class TestNull:
    def test_equality_is_by_label(self):
        assert Null("1") == Null("1")
        assert Null("1") != Null("2")

    def test_null_never_equals_constant(self):
        assert Null("1") != "1"
        assert Null("1") != 1
        assert "1" != Null("1")

    def test_hash_consistent_with_equality(self):
        assert hash(Null("a")) == hash(Null("a"))
        assert len({Null("a"), Null("a"), Null("b")}) == 2

    def test_repr_uses_bottom_symbol(self):
        assert repr(Null("7")) == "⊥7"

    def test_non_string_labels_coerced(self):
        assert Null(3) == Null("3")

    def test_ordering_nulls_after_constants(self):
        assert Null("a") > 5
        assert not (Null("a") < 5)
        assert Null("a") < Null("b")


class TestNullFactory:
    def test_fresh_nulls_are_distinct(self):
        factory = NullFactory()
        assert factory.fresh() != factory.fresh()

    def test_prefix_appears_in_label(self):
        factory = NullFactory("xyz")
        assert factory.fresh().label.startswith("xyz")

    def test_fresh_many_count_and_distinctness(self):
        batch = NullFactory().fresh_many(10)
        assert len(batch) == 10
        assert len(set(batch)) == 10

    def test_two_factories_same_prefix_collide_by_design(self):
        # labels are deterministic per prefix; callers wanting global
        # freshness share one factory
        assert NullFactory("n").fresh() == NullFactory("n").fresh()


class TestClassifiers:
    def test_is_null_and_is_const(self):
        assert is_null(Null("x"))
        assert not is_null(0)
        assert is_const("a")
        assert not is_const(Null("a"))

    def test_filters(self):
        mixed = [1, Null("a"), "b", Null("c")]
        assert list(constants_in(mixed)) == [1, "b"]
        assert list(nulls_in(mixed)) == [Null("a"), Null("c")]

    def test_fresh_nulls_helper(self):
        batch = fresh_nulls(4, "q")
        assert len(set(batch)) == 4
        assert all(n.label.startswith("q") for n in batch)


class TestSortKey:
    def test_total_order_over_mixed_values(self):
        values = [Null("b"), 2, "a", Null("a"), 1]
        ordered = sorted(values, key=sort_key)
        # constants first, then nulls by label
        assert ordered[-2:] == [Null("a"), Null("b")]

    def test_heterogeneous_constants_sortable(self):
        values = [("t",), 3, "x", frozenset()]
        sorted(values, key=sort_key)  # must not raise
