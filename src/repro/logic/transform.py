"""Structural operations on formulae: free variables, substitution, shapes.

These are the workhorses behind evaluation (assignments substitute
values for variables), fragment recognition, and the query wrapper.
"""

from __future__ import annotations

from typing import Hashable, Iterator, Mapping

from repro.logic.ast import (
    And,
    EqAtom,
    Exists,
    FalseF,
    Forall,
    Formula,
    Implies,
    Not,
    Or,
    RelAtom,
    Term,
    TrueF,
    Var,
)

__all__ = [
    "free_vars",
    "all_vars",
    "substitute",
    "is_sentence",
    "relations_used",
    "constants_used",
    "subformulas",
    "quantifier_depth",
    "nnf",
]


def free_vars(formula: Formula) -> frozenset[Var]:
    """The free variables of ``formula``."""
    match formula:
        case TrueF() | FalseF():
            return frozenset()
        case RelAtom(terms=terms):
            return frozenset(t for t in terms if isinstance(t, Var))
        case EqAtom(left=left, right=right):
            return frozenset(t for t in (left, right) if isinstance(t, Var))
        case Not(sub=sub):
            return free_vars(sub)
        case And(subs=subs) | Or(subs=subs):
            out: frozenset[Var] = frozenset()
            for sub in subs:
                out |= free_vars(sub)
            return out
        case Implies(left=left, right=right):
            return free_vars(left) | free_vars(right)
        case Exists(vars=vs, sub=sub) | Forall(vars=vs, sub=sub):
            return free_vars(sub) - frozenset(vs)
    raise TypeError(f"not a formula: {formula!r}")


def all_vars(formula: Formula) -> frozenset[Var]:
    """Every variable occurring in ``formula``, free or bound."""
    match formula:
        case TrueF() | FalseF():
            return frozenset()
        case RelAtom(terms=terms):
            return frozenset(t for t in terms if isinstance(t, Var))
        case EqAtom(left=left, right=right):
            return frozenset(t for t in (left, right) if isinstance(t, Var))
        case Not(sub=sub):
            return all_vars(sub)
        case And(subs=subs) | Or(subs=subs):
            out: frozenset[Var] = frozenset()
            for sub in subs:
                out |= all_vars(sub)
            return out
        case Implies(left=left, right=right):
            return all_vars(left) | all_vars(right)
        case Exists(vars=vs, sub=sub) | Forall(vars=vs, sub=sub):
            return all_vars(sub) | frozenset(vs)
    raise TypeError(f"not a formula: {formula!r}")


def _subst_term(term: Term, binding: Mapping[Var, Hashable]) -> Term:
    if isinstance(term, Var) and term in binding:
        return binding[term]
    return term


def substitute(formula: Formula, binding: Mapping[Var, Hashable]) -> Formula:
    """Replace free variables by *values* (constants or nulls).

    Only ground substitutions are supported — substituting values can
    never capture a bound variable, which keeps this total and simple.
    """
    if not binding:
        return formula
    match formula:
        case TrueF() | FalseF():
            return formula
        case RelAtom(name=name, terms=terms):
            return RelAtom(name, tuple(_subst_term(t, binding) for t in terms))
        case EqAtom(left=left, right=right):
            return EqAtom(_subst_term(left, binding), _subst_term(right, binding))
        case Not(sub=sub):
            return Not(substitute(sub, binding))
        case And(subs=subs):
            return And(tuple(substitute(s, binding) for s in subs))
        case Or(subs=subs):
            return Or(tuple(substitute(s, binding) for s in subs))
        case Implies(left=left, right=right):
            return Implies(substitute(left, binding), substitute(right, binding))
        case Exists(vars=vs, sub=sub):
            inner = {k: v for k, v in binding.items() if k not in vs}
            return Exists(vs, substitute(sub, inner))
        case Forall(vars=vs, sub=sub):
            inner = {k: v for k, v in binding.items() if k not in vs}
            return Forall(vs, substitute(sub, inner))
    raise TypeError(f"not a formula: {formula!r}")


def is_sentence(formula: Formula) -> bool:
    """True iff the formula has no free variables (a Boolean query)."""
    return not free_vars(formula)


def relations_used(formula: Formula) -> frozenset[str]:
    """Names of all relation symbols occurring in the formula."""
    return frozenset(
        sub.name for sub in subformulas(formula) if isinstance(sub, RelAtom)
    )


def constants_used(formula: Formula) -> frozenset[Hashable]:
    """All constant values mentioned in atoms of the formula."""
    consts: set[Hashable] = set()
    for sub in subformulas(formula):
        if isinstance(sub, RelAtom):
            consts.update(t for t in sub.terms if not isinstance(t, Var))
        elif isinstance(sub, EqAtom):
            consts.update(t for t in (sub.left, sub.right) if not isinstance(t, Var))
    return frozenset(consts)


def subformulas(formula: Formula) -> Iterator[Formula]:
    """Depth-first traversal of all subformulae, the formula included."""
    yield formula
    match formula:
        case Not(sub=sub) | Exists(sub=sub) | Forall(sub=sub):
            yield from subformulas(sub)
        case And(subs=subs) | Or(subs=subs):
            for sub in subs:
                yield from subformulas(sub)
        case Implies(left=left, right=right):
            yield from subformulas(left)
            yield from subformulas(right)


def quantifier_depth(formula: Formula) -> int:
    """Maximum nesting depth of quantifier blocks."""
    match formula:
        case TrueF() | FalseF() | RelAtom() | EqAtom():
            return 0
        case Not(sub=sub):
            return quantifier_depth(sub)
        case And(subs=subs) | Or(subs=subs):
            return max(quantifier_depth(s) for s in subs)
        case Implies(left=left, right=right):
            return max(quantifier_depth(left), quantifier_depth(right))
        case Exists(sub=sub) | Forall(sub=sub):
            return 1 + quantifier_depth(sub)
    raise TypeError(f"not a formula: {formula!r}")


def nnf(formula: Formula, negate: bool = False) -> Formula:
    """Negation normal form, with ``→`` compiled away.

    With ``negate=True`` returns the NNF of ``¬formula``.  Useful for
    comparing syntactically different but logically related formulae and
    for the random-formula generators.
    """
    match formula:
        case TrueF():
            return FalseF() if negate else formula
        case FalseF():
            return TrueF() if negate else formula
        case RelAtom() | EqAtom():
            return Not(formula) if negate else formula
        case Not(sub=sub):
            return nnf(sub, not negate)
        case And(subs=subs):
            parts = tuple(nnf(s, negate) for s in subs)
            return Or(parts) if negate else And(parts)
        case Or(subs=subs):
            parts = tuple(nnf(s, negate) for s in subs)
            return And(parts) if negate else Or(parts)
        case Implies(left=left, right=right):
            # φ → ψ  ≡  ¬φ ∨ ψ
            if negate:
                return And((nnf(left), nnf(right, True)))
            return Or((nnf(left, True), nnf(right)))
        case Exists(vars=vs, sub=sub):
            return Forall(vs, nnf(sub, True)) if negate else Exists(vs, nnf(sub))
        case Forall(vars=vs, sub=sub):
            return Exists(vs, nnf(sub, True)) if negate else Forall(vs, nnf(sub))
    raise TypeError(f"not a formula: {formula!r}")
