"""Tests for the datalog substrate and its naive = certain connection."""

import pytest

from repro.data.generate import cycle, path
from repro.data.instance import Instance
from repro.data.values import Null
from repro.datalog import (
    Atom,
    DatalogError,
    Program,
    Rule,
    datalog_certain_answers,
    datalog_naive_answers,
    evaluate_program,
)
from repro.logic.ast import Var
from repro.semantics import get_semantics

x, y, z = Var("x"), Var("y"), Var("z")
X, Y = Null("x"), Null("y")

#: transitive closure of E into T
TC = Program(
    (
        Rule(Atom("T", (x, y)), (Atom("E", (x, y)),)),
        Rule(Atom("T", (x, z)), (Atom("E", (x, y)), Atom("T", (y, z)))),
    )
)


class TestProgramValidation:
    def test_unsafe_rule_rejected(self):
        with pytest.raises(DatalogError):
            Rule(Atom("H", (x, y)), (Atom("E", (x, x)),))

    def test_empty_body_rejected(self):
        with pytest.raises(DatalogError):
            Rule(Atom("H", (x,)), ())

    def test_arity_clash_rejected(self):
        with pytest.raises(DatalogError):
            Program(
                (
                    Rule(Atom("H", (x,)), (Atom("E", (x, y)),)),
                    Rule(Atom("H", (x, y)), (Atom("E", (x, y)),)),
                )
            )

    def test_empty_program_rejected(self):
        with pytest.raises(DatalogError):
            Program(())

    def test_idb_edb_split(self):
        assert TC.idb == {"T"}
        assert TC.edb == {"E"}

    def test_rules_for(self):
        assert len(TC.rules_for("T")) == 2
        assert TC.rules_for("E") == ()

    def test_constants_allowed_in_rules(self):
        p = Program((Rule(Atom("H", (x,)), (Atom("E", (x, 1)),)),))
        got = evaluate_program(p, Instance({"E": [(5, 1), (6, 2)]}))
        assert got.tuples("H") == frozenset({(5,)})


class TestFixpoint:
    def test_transitive_closure_on_path(self):
        edb = path(3, values=[0, 1, 2, 3])
        fixpoint = evaluate_program(TC, edb)
        expected = {(i, j) for i in range(4) for j in range(4) if i < j}
        assert fixpoint.tuples("T") == frozenset(expected)

    def test_transitive_closure_on_cycle(self):
        edb = cycle(3, values=[0, 1, 2])
        fixpoint = evaluate_program(TC, edb)
        assert fixpoint.tuples("T") == frozenset(
            {(i, j) for i in range(3) for j in range(3)}
        )

    def test_nulls_are_plain_values(self):
        edb = Instance({"E": [(1, X), (X, 2)]})
        fixpoint = evaluate_program(TC, edb)
        assert (1, 2) in fixpoint.tuples("T")  # through the null
        assert (1, X) in fixpoint.tuples("T")

    def test_edb_preserved(self):
        edb = Instance({"E": [(1, 2)]})
        fixpoint = evaluate_program(TC, edb)
        assert edb <= fixpoint

    def test_empty_edb(self):
        fixpoint = evaluate_program(TC, Instance.empty())
        assert fixpoint.tuples("T") == frozenset()

    def test_mutual_recursion(self):
        # even/odd distance from a source marker
        even = Program(
            (
                Rule(Atom("Even", (x,)), (Atom("Start", (x,)),)),
                Rule(Atom("Odd", (y,)), (Atom("Even", (x,)), Atom("E", (x, y)))),
                Rule(Atom("Even", (y,)), (Atom("Odd", (x,)), Atom("E", (x, y)))),
            )
        )
        edb = path(3, values=[0, 1, 2, 3]).union(Instance({"Start": [(0,)]}))
        fixpoint = evaluate_program(even, edb)
        assert fixpoint.tuples("Even") == frozenset({(0,), (2,)})
        assert fixpoint.tuples("Odd") == frozenset({(1,), (3,)})


class TestNaiveEqualsCertain:
    """Section 12's observation: naive evaluation works for datalog."""

    EDBS = [
        Instance({"E": [(1, X), (X, 2)]}),
        Instance({"E": [(X, Y), (Y, X)]}),
        Instance({"E": [(1, 2), (2, X)]}),
        Instance({"E": [(X, X)]}),
    ]

    @pytest.mark.parametrize("key", ["cwa", "owa"])
    def test_tc_naive_equals_certain(self, key):
        sem = get_semantics(key)
        extra = {"extra_facts": 1} if key == "owa" else {}
        for edb in self.EDBS:
            naive = datalog_naive_answers(TC, edb, "T")
            certain = datalog_certain_answers(TC, edb, "T", sem, **extra)
            assert naive == certain, (key, edb)

    def test_naive_through_null_join_is_certain(self):
        # the repeated null ⊥ joins (1,⊥) with (⊥,2): T(1,2) is certain
        edb = Instance({"E": [(1, X), (X, 2)]})
        naive = datalog_naive_answers(TC, edb, "T")
        assert (1, 2) in naive

    def test_codd_style_join_not_certain(self):
        # distinct nulls do not join: T(1,2) must NOT be answered
        edb = Instance({"E": [(1, X), (Y, 2)]})
        naive = datalog_naive_answers(TC, edb, "T")
        assert (1, 2) not in naive
        certain = datalog_certain_answers(TC, edb, "T", get_semantics("cwa"))
        assert naive == certain
