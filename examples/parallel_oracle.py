"""Tour of the PR-3 oracle: world pruning, residual probing, sharding.

Shows the certain-answer oracle's performance machinery end to end:
plan-relevant null restriction, seed worlds, the residual fast path,
``Database(workers=...)`` / ``certain_answers(..., workers=...)``
sharding with its cost model, and the per-shard stats surfaced in
``EvalResult.stats["oracle"]``.  Run with::

    python examples/parallel_oracle.py

(the same knob is available on the command line::

    python -m repro certain "exists z (R(x,z) & R(z,y))" db.json --workers 4
)
"""

from importlib import import_module

from repro import Database, Null
from repro.core import certain_answers
from repro.semantics import get_semantics

plan_mod = import_module("repro.core.plan")

n = [Null(f"n{i}") for i in range(8)]

# ----------------------------------------------------------------------
# 1. Plan-relevant nulls: the query below never reads S, so S's nulls
#    are never valuated — 3 total nulls, 1 relevant
# ----------------------------------------------------------------------

db = Database(
    {"R": [(1, n[0]), (n[0], 2)], "S": [(n[1],), (n[2],)]},
    semantics="cwa",
)
q = db.query("exists z (R(x, z) & R(z, y))", vars=("x", "y"), name="join")
result = q.evaluate(mode="enumeration")
oracle = result.stats["oracle"]
print(f"answers: {sorted(result.answers)}")
print(
    f"oracle:  {oracle['worlds']} worlds, "
    f"{oracle['relevant_nulls']}/{oracle['total_nulls']} nulls relevant "
    f"(mode={oracle['mode']})"
)

# ----------------------------------------------------------------------
# 2. The cost model: small valuation spaces stay serial no matter how
#    many workers are requested — EXPLAIN shows the decision
# ----------------------------------------------------------------------

small = Database({"R": [(1, n[0])]}, semantics="cwa", workers=4)
plan = small.explain("exists z (R(x, z) & R(z, y))", mode="enumeration")
print(f"\nsmall space: cost.workers={plan.cost.workers}")
for note in plan.notes:
    print(f"  note: {note}")

big = Database(
    {"R": [(n[i], n[i + 1]) for i in range(7)]}, semantics="cwa", workers=4
)
plan = big.explain("exists z (R(x, z) & R(z, y))", mode="enumeration")
print(f"big space:   cost.workers={plan.cost.workers} "
      f"(≤ {plan.cost.valuation_bound} valuations)")

# ----------------------------------------------------------------------
# 3. Sharded evaluation: identical answers, per-shard stats
#    (on a single-CPU host the pool adds overhead — the point of the
#    cost model; on multi-core hosts the shards run concurrently)
# ----------------------------------------------------------------------

instance = {"R": [(n[0], n[1]), (n[1], n[2]), (n[2], 1), (2, n[3]), (n[3], n[0])]}
sem = get_semantics("cwa")
stats: dict = {}
serial = certain_answers(db.query("exists z (R(x, z) & R(z, y))").query,
                         Database(instance).instance, sem)
sharded = certain_answers(db.query("exists z (R(x, z) & R(z, y))").query,
                          Database(instance).instance, sem,
                          workers=4, stats_out=stats)
assert serial == sharded
print(f"\nsharded == serial: {sorted(sharded)}")
print(f"mode={stats['mode']}, worlds={stats['worlds']}", end="")
if stats["mode"] == "parallel":
    print(f", shards={stats['shards']}, cancelled={stats['cancelled']}")
    for shard in stats["per_shard"][:4]:
        print(f"  shard {shard['shard']}: {shard['worlds']} worlds "
              f"in {shard['seconds'] * 1e3:.1f} ms (empty={shard['empty']})")
else:
    print()

print("\nparallel-oracle tour OK.")
