"""Command-line interface: analyze, evaluate and explain queries over JSON instances.

Instance files are JSON objects mapping relation names to lists of rows;
a string cell starting with ``"?"`` denotes a marked null (``"?x"`` is
the null ⊥x, repeatable across facts); a doubled marker escapes a
literal leading question mark (``"??x"`` is the constant ``"?x"``)::

    {"R": [[1, "?x"], ["?y", "?z"]], "S": [["?x", 4]]}

Usage::

    python -m repro analyze  "exists z (R(x,z) & S(z,y))" --semantics owa
    python -m repro evaluate "exists z (R(x,z) & S(z,y))" db.json --semantics cwa
    python -m repro explain  "forall x . exists y . D(x,y)" db.json --semantics owa
    python -m repro fragments "forall x . exists y . D(x,y)"
    python -m repro serve db.json --data-dir ./state
    python -m repro snapshot ./state
    python -m repro recover  ./state --dump out.json

``explain`` prints the evaluation plan (chosen backend, Figure-1
verdict, exactness, cost hints) without running the query; ``--json``
renders it as machine-readable JSON.  ``serve`` runs the JSON-lines
query server (``--data-dir`` makes it durable: recover on start,
journal every acknowledged write, checkpoint on graceful shutdown);
``snapshot`` compacts a data directory; ``recover`` reports what
recovery would restore and can export the instance.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.core import analyze, evaluate
from repro.core.analyzer import FIGURE_1
from repro.core.backends import available_backends
from repro.data.instance import Instance

# the JSON wire format lives in repro.data.jsonio (shared with the
# server); the CLI re-exports the instance codec under its historical
# public names
from repro.data.jsonio import instance_from_json, instance_to_json
from repro.logic.classes import classify
from repro.logic.queries import Query
from repro.semantics.base import ExpansionLimitError
from repro.session import Database, as_query

__all__ = ["main", "instance_from_json", "instance_to_json"]


def _build_query(text: str) -> Query:
    # one source of truth for the "answer columns = free variables in
    # name order" convention: the session layer's normaliser
    return as_query(text, name="cli")


def _load_instance(path: str | None) -> Instance:
    if path is None:
        return Instance.empty()
    with open(path, encoding="utf-8") as handle:
        return instance_from_json(handle.read())


def _cmd_analyze(args) -> int:
    query = _build_query(args.query)
    keys = [args.semantics] if args.semantics else sorted(FIGURE_1)
    for key in keys:
        verdict = analyze(query, key)
        flag = "SOUND" if verdict.sound else "not sound"
        extra = " (over cores)" if verdict.over_cores_only else ""
        print(f"{key:>8}: naive evaluation {flag}{extra}")
        print(f"          {verdict.reason}")
    return 0


def _cmd_fragments(args) -> int:
    query = _build_query(args.query)
    got = classify(query.formula)
    print(f"query: {query.formula!r}")
    print("fragments:", ", ".join(got))
    return 0


def _print_result(query: Query, result) -> None:
    if query.is_boolean:
        print(f"certain answer: {result.holds}")
    else:
        head = ", ".join(v.name for v in query.answer_vars)
        print(f"certain answers ({head}):")
        for row in sorted(result.answers, key=repr):
            print("  " + ", ".join(map(repr, row)))
        if not result.answers:
            print("  (none)")
    status = "exact" if result.exact else f"approximate ({result.direction})"
    print(f"method: {result.method}  [{status}]")


def _cmd_evaluate(args) -> int:
    query = _build_query(args.query)
    instance = _load_instance(args.instance)
    result = evaluate(
        query, instance, semantics=args.semantics, mode=args.mode,
        workers=args.workers,
    )
    _print_result(query, result)
    return 0


def _cmd_certain(args) -> int:
    """The oracle, explicitly: bounded enumeration with optional sharding."""
    query = _build_query(args.query)
    instance = _load_instance(args.instance)
    result = evaluate(
        query, instance, semantics=args.semantics, mode="enumeration",
        workers=args.workers,
    )
    _print_result(query, result)
    oracle = result.stats.get("oracle")
    if oracle:
        worlds = oracle.get("worlds", "?")
        mode = oracle.get("mode", "?")
        line = f"oracle: {worlds} worlds ({mode}"
        if oracle.get("workers"):
            line += f", {oracle['workers']} workers, {oracle.get('shards', 0)} shards"
        if oracle.get("cancelled"):
            line += ", cancelled early"
        print(line + ")")
    return 0


def _cmd_explain(args) -> int:
    query = _build_query(args.query)
    instance = _load_instance(args.instance)
    db = Database(instance, semantics=args.semantics, workers=args.workers)
    plan = db.explain(query, mode=args.mode)
    operators: str | None = None
    if args.operators:
        from repro.core.backends import get_backend
        from repro.logic.compile import compiled_query

        if getattr(get_backend(plan.backend), "engine", None) == "compiled":
            operators = compiled_query(query).describe()
        else:
            operators = f"(backend {plan.backend!r} does not run the compiled engine)"
    if args.as_json:
        data = plan.to_dict()
        if operators is not None:
            data["operators"] = operators.splitlines()
        print(json.dumps(data, indent=2, default=str))
    else:
        print(plan.render())
        if operators is not None:
            print("  operators   :")
            for line in operators.splitlines():
                print("    " + line)
    return 0


def _cmd_serve(args) -> int:
    """Run the JSON-lines query server over one shared Database."""
    from repro.server import QueryService, Server

    # an instance file seeds a *fresh* data dir only; with neither, the
    # session starts empty (or recovers whatever --data-dir holds)
    instance = _load_instance(args.instance) if args.instance else None
    db = Database(
        instance, semantics=args.semantics, workers=args.workers, path=args.data_dir
    )
    if args.data_dir:
        info = db.recovery_info
        print(
            f"repro serve: data dir {args.data_dir} — recovered generation "
            f"{db.generation} ({info.wal_records} WAL records on top of "
            f"snapshot generation {info.snapshot_generation})"
        )
    if args.workers and args.workers > 1:
        # fork the oracle's worker processes before any client thread
        # exists (forking a multithreaded parent is a footgun)
        db.ensure_worker_pool()
    service = QueryService(db, batch=not args.no_batch)
    server = Server(service, host=args.host, port=args.port, max_threads=args.threads)
    print(f"repro serve: listening on {server.address[0]}:{server.address[1]}", flush=True)
    print("protocol: one JSON request per line, one JSON response per line", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        server.shutdown()
        if db.checkpoint():
            # graceful-shutdown snapshot: the next start reads one
            # snapshot instead of replaying the whole log
            print(f"checkpointed {args.data_dir} at generation {db.generation}")
        db.close()
    return 0


def _cmd_snapshot(args) -> int:
    """Compact a data directory: write a fresh snapshot, truncate the WAL."""
    db = Database(path=args.data_dir)
    try:
        info = db.recovery_info
        written = db.checkpoint()
        stats = db.storage_stats
        print(
            f"recovered generation {db.generation} "
            f"({info.wal_records} WAL records replayed, "
            f"{info.torn_bytes} torn bytes ignored)"
        )
        if written:
            print(
                f"snapshot written: {db.instance.fact_count()} facts, "
                f"{stats['snapshot_bytes']} bytes; WAL truncated"
            )
        else:
            print("already fully snapshotted; nothing to do")
    finally:
        db.close()
    return 0


def _cmd_recover(args) -> int:
    """Open a data directory, report what recovery found, optionally dump it."""
    db = Database(path=args.data_dir)
    try:
        info = db.recovery_info
        snapshot_note = "" if info.had_snapshot else " (no snapshot file)"
        skipped_note = (
            f" ({info.wal_skipped} already in the snapshot)" if info.wal_skipped else ""
        )
        print(f"data dir      : {args.data_dir}")
        print(f"snapshot      : generation {info.snapshot_generation}{snapshot_note}")
        print(f"WAL replayed  : {info.wal_records} records{skipped_note}")
        if info.torn_bytes:
            print(f"torn tail     : {info.torn_bytes} bytes ignored (crash mid-append)")
        print(f"generation    : {db.generation}")
        print(f"facts         : {db.instance.fact_count()} across "
              f"{len(db.instance.relations)} relations")
        for name in db.instance.relations:
            print(f"  {name}/{db.instance.arity(name)}: {len(db.instance.tuples(name))} rows, "
                  f"generation {db.rel_generation(name)}")
        if args.dump:
            with open(args.dump, "w", encoding="utf-8") as handle:
                handle.write(instance_to_json(db.instance) + "\n")
            print(f"instance dumped to {args.dump}")
    finally:
        db.close()
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Naive evaluation and certain answers over incomplete databases",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    modes = ["auto", *available_backends()]

    p_analyze = sub.add_parser("analyze", help="is naive evaluation sound for this query?")
    p_analyze.add_argument("query", help="FO query text")
    p_analyze.add_argument("--semantics", choices=sorted(FIGURE_1), default=None)
    p_analyze.set_defaults(func=_cmd_analyze)

    p_frag = sub.add_parser("fragments", help="which syntactic fragments contain the query")
    p_frag.add_argument("query")
    p_frag.set_defaults(func=_cmd_fragments)

    workers_help = (
        "max worker processes for the oracle's parallel world sharding "
        "(default: serial; small valuation spaces run serially regardless)"
    )

    p_eval = sub.add_parser("evaluate", help="compute certain answers over a JSON instance")
    p_eval.add_argument("query")
    p_eval.add_argument("instance", help="path to the JSON instance file")
    p_eval.add_argument("--semantics", choices=sorted(FIGURE_1), default="cwa")
    p_eval.add_argument("--mode", choices=modes, default="auto")
    p_eval.add_argument("--workers", type=int, default=None, help=workers_help)
    p_eval.set_defaults(func=_cmd_evaluate)

    p_certain = sub.add_parser(
        "certain",
        help="force the certain-answer oracle (bounded [[D]] enumeration), "
        "with per-shard stats",
    )
    p_certain.add_argument("query")
    p_certain.add_argument("instance", help="path to the JSON instance file")
    p_certain.add_argument("--semantics", choices=sorted(FIGURE_1), default="cwa")
    p_certain.add_argument("--workers", type=int, default=None, help=workers_help)
    p_certain.set_defaults(func=_cmd_certain)

    p_explain = sub.add_parser(
        "explain", help="show the evaluation plan (backend, verdict, cost) without running"
    )
    p_explain.add_argument("query")
    p_explain.add_argument(
        "instance",
        nargs="?",
        default=None,
        help="optional JSON instance file (default: the empty instance)",
    )
    p_explain.add_argument("--semantics", choices=sorted(FIGURE_1), default="cwa")
    p_explain.add_argument("--mode", choices=modes, default="auto")
    p_explain.add_argument("--workers", type=int, default=None, help=workers_help)
    p_explain.add_argument(
        "--json", dest="as_json", action="store_true", help="emit the plan as JSON"
    )
    p_explain.add_argument(
        "--operators",
        action="store_true",
        help="also show the compiled relational operator tree (joins, scans, …)",
    )
    p_explain.set_defaults(func=_cmd_explain)

    p_serve = sub.add_parser(
        "serve",
        help="run the JSON-lines query server over one shared session "
        "(concurrent clients, incremental mutation, result caching)",
    )
    p_serve.add_argument(
        "instance",
        nargs="?",
        default=None,
        help="optional JSON instance file to seed the session (default: empty)",
    )
    p_serve.add_argument("--semantics", choices=sorted(FIGURE_1), default="cwa")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=7453, help="TCP port (0 = pick a free one)"
    )
    p_serve.add_argument(
        "--threads", type=int, default=8, help="max concurrent client connections"
    )
    p_serve.add_argument("--workers", type=int, default=None, help=workers_help)
    p_serve.add_argument(
        "--no-batch",
        action="store_true",
        help="disable coalescing of concurrent query requests into evaluate_many batches",
    )
    p_serve.add_argument(
        "--data-dir",
        default=None,
        help="data directory for durable serving: recover on start, journal every "
        "acknowledged write, checkpoint on graceful shutdown (an instance file "
        "may seed a fresh directory only)",
    )
    p_serve.set_defaults(func=_cmd_serve)

    p_snapshot = sub.add_parser(
        "snapshot",
        help="compact a data directory: write a fresh snapshot and truncate the WAL",
    )
    p_snapshot.add_argument("data_dir", help="data directory of a durable session")
    p_snapshot.set_defaults(func=_cmd_snapshot)

    p_recover = sub.add_parser(
        "recover",
        help="recover a data directory (snapshot + WAL replay) and report what was found",
    )
    p_recover.add_argument("data_dir", help="data directory of a durable session")
    p_recover.add_argument(
        "--dump",
        metavar="PATH",
        default=None,
        help="also write the recovered instance as a JSON instance file",
    )
    p_recover.set_defaults(func=_cmd_recover)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ValueError, OSError, ExpansionLimitError) as err:
        print(f"error: {err}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
