"""A thread-pooled JSON-lines query server over one shared :class:`Database`.

The serving layer that turns the engine from one-shot evaluation into a
long-lived service:

* :class:`QueryService` — the transport-free core: it translates JSON
  request objects (``{"op": "query", ...}``) into session operations,
  counts what it serves, and **coalesces concurrent query requests into
  one** :meth:`~repro.session.Database.evaluate_many` **batch** via a
  group-commit gate, so compatible certain-answer requests that arrive
  while another batch is running share one pool build and one core
  check;
* :class:`AsyncServer` — the serving core: one asyncio event loop
  multiplexing thousands of connections with per-connection request
  **pipelining** (``id``-correlated, out-of-order responses),
  semaphore-bounded **admission control** (typed ``overloaded`` frames
  instead of unbounded queueing), server-enforced ``deadline_ms``, and
  ``drain()`` backpressure.  ``repro serve`` (:mod:`repro.cli`) wires
  it to a command line; ``docs/serving.md`` is the architecture tour;
* :class:`Server` — the original thread-per-connection front end, kept
  as a compatibility shim (``repro serve --threaded``); it serves the
  same protocol in request order.

Concurrency model: the :class:`~repro.session.Database` is already
thread-safe (immutable instance snapshots + per-relation generation
counters), so handler threads call straight into it.  Mutations apply
atomically; readers either hit the generation-keyed result cache or
evaluate against a consistent snapshot.  When the session was built
with ``workers > 1``, the oracle's process pool is created once at
startup and reused across requests (:class:`OracleWorkerPool`) instead
of being re-forked per call.

When the shared session is durable (``Database(path=...)``), mutations
are journaled/fsync'd before they are acknowledged, the ``checkpoint``
op forces a snapshot + log truncation, and ``repro serve --data-dir``
checkpoints on graceful shutdown.  See ``docs/wire-protocol.md`` for
the full op reference and ``docs/persistence.md`` for the durability
contract.

Replication (:mod:`repro.replication`) rides the same wire: the
``replicate`` op turns its connection into a WAL frame stream served by
the node's :class:`~repro.replication.feed.ReplicationFeed`; a node
started with ``replicate_from=`` tails a primary, rejects writes with a
typed ``read_only`` error, and honours ``min_generation`` bounds on
``query``/``batch`` (waiting up to ``wait_timeout_s``, then answering
with a typed ``stale`` error carrying its applied position); the
``promote`` op flips a replica writable.  ``docs/replication.md`` has
the full contract.

Wire format (cells follow :mod:`repro.data.jsonio` — ``"?x"`` is the
null ⊥x, ``"??x"`` the constant ``"?x"``)::

    → {"id": 1, "op": "query", "query": "exists z (R(x,z) & S(z,y))"}
    ← {"id": 1, "ok": true, "answers": [[1, 4]], "exact": true, ...}
    → {"id": 2, "op": "insert", "relation": "S", "rows": [[9, 9]]}
    ← {"id": 2, "ok": true, "changed": 1, "generation": 1}
"""

from __future__ import annotations

import asyncio
import json
import queue
import socket
import threading
from concurrent.futures import ThreadPoolExecutor
from time import monotonic, perf_counter
from typing import Iterator

from repro import faults as _faults
from repro.core.analyzer import FIGURE_1
from repro.data.jsonio import decode_row, encode_row, instance_to_json
from repro.replication.feed import ReplicationFeed
from repro.replication.replica import ReplicaTailer
from repro.session import Database, DegradedError, PreparedQuery

__all__ = [
    "FEATURES",
    "PROTO_VERSION",
    "AsyncServer",
    "QueryService",
    "Server",
    "async_serve",
    "serve",
]

#: wire-protocol version reported by ``ping`` and ``stats``.  v2 added
#: the ``id``-echo pipelining contract, the typed ``overloaded`` frame
#: and the ``deadline_ms`` request field (see ``docs/wire-protocol.md``)
PROTO_VERSION = 2

#: every optional protocol feature this codebase knows how to serve.
#: A node advertises the subset its *transport* actually honours:
#: the async server all of them, the threaded shim only ``pipelining``
#: (in-order), a bare :class:`QueryService` likewise.
FEATURES = ("pipelining", "deadline_ms")


class _Reject(Exception):
    """A typed error response: ``fields`` ride along beside ``error``.

    Raised by ops that must say *why* structurally (``stale``,
    ``read_only``) so clients can react — redirect to the primary,
    retry with a longer deadline — without parsing prose.
    """

    def __init__(self, error: str, **fields):
        super().__init__(error)
        self.fields = {"error": error, **fields}


class _Pending:
    """One query request waiting in the batch gate."""

    __slots__ = ("prepared", "result", "error", "done", "group_size")

    def __init__(self, prepared: PreparedQuery):
        self.prepared = prepared
        self.result = None
        self.error: Exception | None = None
        self.done = False
        self.group_size = 0


class _BatchGate:
    """Group-commit for query requests.

    A thread arriving for a given mode when no batch is running becomes
    the *leader*: it drains every compatible request currently queued
    (its own plus whatever piled up while the previous batch ran) and
    evaluates them in one ``evaluate_many`` call.  Followers wait; when
    the batch completes, the leader steps down and any follower whose
    request is still queued is woken to lead the next round — so a
    leader serves exactly one batch and no request's latency depends on
    the arrival rate of later ones.  A lone request is a batch of one:
    no timers, no artificial latency.
    """

    def __init__(self, db: Database):
        self._db = db
        self._cond = threading.Condition()
        self._pending: dict[str, list[_Pending]] = {}
        self._leaders: set[str] = set()

    def evaluate(self, prepared: PreparedQuery, mode: str = "auto"):
        """Evaluate through the gate; returns ``(EvalResult, group_size)``."""
        item = _Pending(prepared)
        with self._cond:
            self._pending.setdefault(mode, []).append(item)
            while not item.done and mode in self._leaders:
                self._cond.wait()
            if not item.done:
                # no batch in flight: lead one round with whatever queued
                self._leaders.add(mode)
                batch = self._pending.pop(mode)
        if not item.done:
            try:
                self._run(batch, mode)
            finally:
                with self._cond:
                    self._leaders.discard(mode)
                    self._cond.notify_all()
        if item.error is not None:
            raise item.error
        return item.result, item.group_size

    def _run(self, batch: list[_Pending], mode: str) -> None:
        try:
            results = self._db.evaluate_many(
                [item.prepared for item in batch], mode=mode
            )
            for item, result in zip(batch, results):
                item.result = result
                item.group_size = len(batch)
        except Exception:
            # one bad request must not poison its batch-mates: fall back
            # to individual evaluation so each request gets its own
            # result or its own error
            for item in batch:
                try:
                    item.result = item.prepared.evaluate(mode)
                    item.group_size = 1
                except Exception as err:  # noqa: BLE001 - reported per request
                    item.error = err
        finally:
            with self._cond:
                for item in batch:
                    item.done = True
                self._cond.notify_all()


class QueryService:
    """Translate JSON requests into operations on one shared session.

    Transport-free: :meth:`handle` takes and returns plain dicts (the
    TCP server, tests and benchmarks all call it directly).  Thread-safe
    — any number of handler threads may call it concurrently.

    >>> from repro.session import Database
    >>> service = QueryService(Database({"R": [(1, 2)]}))
    >>> service.handle({"id": 1, "op": "query", "query": "R(x, y)"})["answers"]
    [[1, 2]]
    >>> service.handle({"op": "insert", "relation": "R", "rows": [[3, 4]]})["changed"]
    1
    >>> service.handle({"op": "nope"})["ok"]
    False
    """

    #: request fields every op understands
    _COMMON = ("id", "op")

    def __init__(
        self,
        db: Database,
        *,
        batch: bool = True,
        feed: ReplicationFeed | None = None,
        tailer: ReplicaTailer | None = None,
        features: tuple[str, ...] = ("pipelining",),
    ):
        self.db = db
        self._batch = _BatchGate(db) if batch else None
        #: the replication feed serving downstream replicas (``None`` = off)
        self.feed = feed
        #: the tailer streaming from an upstream primary; its presence
        #: makes this node a replica (writes rejected) until ``promote``
        self.tailer = tailer
        #: protocol features the transport in front of this service
        #: honours, advertised by ``ping``/``stats`` (the async server
        #: passes the full :data:`FEATURES`)
        self.features = tuple(features)
        self._replica_mode = tailer is not None
        self._lock = threading.Lock()
        self._counters = {
            "requests": 0,
            "queries": 0,
            "mutations": 0,
            "batched_requests": 0,
            "replicate_streams": 0,
            "overloaded": 0,
            "deadline_expired": 0,
            "errors": 0,
        }
        self._started = perf_counter()

    @property
    def role(self) -> str:
        """``"primary"`` or ``"replica"`` (flipped by the ``promote`` op)."""
        return "replica" if self._replica_mode else "primary"

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------

    def handle(self, request: dict) -> dict:
        """Serve one request object; never raises (errors become responses)."""
        with self._lock:
            self._counters["requests"] += 1
        rid = request.get("id") if isinstance(request, dict) else None
        try:
            if not isinstance(request, dict):
                raise ValueError("request must be a JSON object")
            op = request.get("op")
            handler = getattr(self, f"_op_{op}", None)
            if op is None or handler is None:
                raise ValueError(f"unknown op {op!r}")
            response = handler(request)
        except _Reject as err:
            with self._lock:
                self._counters["errors"] += 1
            response = {"ok": False, **err.fields}
        except DegradedError as err:
            # the durability layer refused the write: a *typed* error so
            # clients can distinguish "not applied" from a generic 500
            with self._lock:
                self._counters["errors"] += 1
            response = {
                "ok": False,
                "error": str(err),
                "error_type": "degraded",
                "health": self.db.health,
                "role": self.role,
            }
        except Exception as err:  # noqa: BLE001 - service boundary: a bad
            # request (parse recursion, schema violation, expansion limit,
            # …) must become an error *response*, never kill the worker
            # thread serving the connection
            with self._lock:
                self._counters["errors"] += 1
            response = {"ok": False, "error": str(err) or repr(err)}
        if rid is not None:
            response["id"] = rid
        return response

    def handle_line(self, line: str) -> str:
        """One JSON-lines exchange: request text in, response text out."""
        try:
            request = json.loads(line)
        except json.JSONDecodeError as err:
            with self._lock:
                self._counters["requests"] += 1
                self._counters["errors"] += 1
            return json.dumps({"ok": False, "error": f"bad JSON: {err}"})
        return json.dumps(self.handle(request))

    def handle_or_stream(self, line: str) -> tuple[str | None, Iterator[dict | str] | None]:
        """One wire line → ``(response_text, None)`` or ``(None, frames)``.

        The streaming side of the protocol: a ``replicate`` request
        turns its connection into a frame stream (the second element —
        dict frames to encode, or pre-encoded ``str`` lines) that the
        transport writes until the generator ends or the consumer goes
        away; every other request gets the usual one-line response.  The
        transport must ``close()`` an abandoned stream so its replica
        link is unregistered.
        """
        try:
            request = json.loads(line)
        except json.JSONDecodeError:
            return self.handle_line(line), None  # reuse the error path
        if isinstance(request, dict) and request.get("op") == "replicate":
            return None, self.replicate_stream(request)
        return json.dumps(self.handle(request)), None

    def replicate_stream(self, request: dict) -> Iterator[dict | str]:
        """Serve one replica: hello, then frames from the feed, forever."""
        with self._lock:
            self._counters["requests"] += 1
            self._counters["replicate_streams"] += 1
        if self.feed is None:
            with self._lock:
                self._counters["errors"] += 1
            yield {"ok": False, "error": "replication feed is disabled on this node"}
            return
        position = request.get("position") or {}
        generation = position.get("generation", 0)
        if not isinstance(generation, int) or generation < 0:
            with self._lock:
                self._counters["errors"] += 1
            yield {"ok": False, "error": "'position.generation' must be a non-negative integer"}
            return
        announced = (request.get("replica") or {}).get("address")
        link = self.feed.register(announced if isinstance(announced, str) else None)
        try:
            yield {"ok": True, "frame": "hello", "role": self.role,
                   "generation": self.db.generation}
            yield from self.feed.stream(generation, link, resync=bool(request.get("resync")))
        finally:
            self.feed.unregister(link)

    # ------------------------------------------------------------------
    # replication guards
    # ------------------------------------------------------------------

    def _require_primary(self) -> None:
        """Reject mutations on a replica with a typed ``read_only`` error."""
        if not self._replica_mode:
            return
        fields: dict = {"error_type": "read_only", "role": "replica"}
        if self.tailer is not None:
            fields["primary"] = self.tailer.primary_address
        raise _Reject(
            "read_only: this node is a replica; send writes to the primary", **fields
        )

    def _wait_fresh(self, request: dict) -> None:
        """Honour ``min_generation`` bounds, or raise a typed ``stale`` error.

        The staleness contract: the query either runs against state at
        least as new as the requested floor(s), or the client gets a
        ``stale`` frame carrying this node's applied position — never a
        silently stale answer.
        """
        min_g = request.get("min_generation")
        min_rel = request.get("min_rel_generation")
        if min_g is None and not min_rel:
            return
        if min_g is not None and (not isinstance(min_g, int) or min_g < 0):
            raise ValueError("'min_generation' must be a non-negative integer")
        if min_rel is not None and (
            not isinstance(min_rel, dict)
            or not all(
                isinstance(name, str) and isinstance(gen, int)
                for name, gen in min_rel.items()
            )
        ):
            raise ValueError("'min_rel_generation' must map relation names to integers")
        timeout = request.get("wait_timeout_s", 2.0)
        if not isinstance(timeout, (int, float)) or timeout < 0:
            raise ValueError("'wait_timeout_s' must be a non-negative number")
        if self.db.wait_for_generation(min_g, min_rel, timeout=float(timeout)):
            return
        position = self.db.position
        raise _Reject(
            f"stale: applied position {position['generation']} has not reached "
            f"the requested floor within {timeout}s",
            error_type="stale",
            stale=True,
            role=self.role,
            generation=position["generation"],
            rel_generations=position["rel_generations"],
            min_generation=min_g,
            min_rel_generation=min_rel,
        )

    # ------------------------------------------------------------------
    # ops
    # ------------------------------------------------------------------

    def bump(self, counter: str, by: int = 1) -> None:
        """Thread-safely increment a service counter (transport hooks).

        The async transport accounts for work the service never sees —
        requests shed at admission (``overloaded``), deadlines that
        expired while an op was still running (``deadline_expired``) —
        so ``stats`` reports them alongside the served ops.
        """
        with self._lock:
            self._counters[counter] = self._counters.get(counter, 0) + by

    def _op_ping(self, request: dict) -> dict:
        return {
            "ok": True,
            "pong": True,
            "proto": PROTO_VERSION,
            "features": list(self.features),
        }

    def _prepare(self, request: dict) -> PreparedQuery:
        text = request.get("query")
        if not isinstance(text, str) or not text:
            raise ValueError("'query' must be non-empty query text")
        vars_ = request.get("vars")
        if vars_ is not None and not isinstance(vars_, list):
            raise ValueError("'vars' must be a list of variable names")
        semantics = request.get("semantics")
        if semantics is not None and semantics not in FIGURE_1:
            raise ValueError(
                f"unknown semantics {semantics!r}; choose from {sorted(FIGURE_1)}"
            )
        return self.db.query(
            text, tuple(vars_) if vars_ is not None else None, semantics=semantics
        )

    def _render(self, prepared: PreparedQuery, result, group_size: int = 1) -> dict:
        query = prepared.query
        payload = {
            "ok": True,
            "answers": [
                encode_row(query.name, row)
                for row in sorted(result.answers, key=repr)
            ],
            "holds": result.holds,
            "exact": result.exact,
            "direction": result.direction,
            "method": result.method,
            "cache": result.stats.get("result_cache"),
            "generation": result.stats.get("generation"),
            "batched": group_size > 1,
        }
        if group_size > 1:
            with self._lock:
                self._counters["batched_requests"] += 1
        return payload

    def _op_query(self, request: dict) -> dict:
        self._wait_fresh(request)
        prepared = self._prepare(request)
        mode = request.get("mode", "auto")
        if not isinstance(mode, str):
            raise ValueError("'mode' must be a backend name or 'auto'")
        with self._lock:
            self._counters["queries"] += 1
        if self._batch is not None:
            result, group_size = self._batch.evaluate(prepared, mode)
        else:
            result, group_size = prepared.evaluate(mode), 1
        return self._render(prepared, result, group_size)

    def _op_batch(self, request: dict) -> dict:
        """An explicit client-side batch: one evaluate_many, one response."""
        self._wait_fresh(request)  # one staleness bound covers the whole batch
        specs = request.get("queries")
        if not isinstance(specs, list):
            raise ValueError("'queries' must be a list of query objects")
        prepared = [self._prepare(spec) for spec in specs]
        with self._lock:
            self._counters["queries"] += len(prepared)
        mode = request.get("mode", "auto")
        results = self.db.evaluate_many(prepared, mode=mode)
        return {
            "ok": True,
            "results": [
                self._render(p, r, len(prepared)) for p, r in zip(prepared, results)
            ],
        }

    def _rows(self, request: dict, field: str = "rows") -> list[tuple]:
        relation = request.get("relation")
        if not isinstance(relation, str) or not relation:
            raise ValueError("'relation' must be a non-empty string")
        rows = request.get(field)
        if not isinstance(rows, list):
            raise ValueError(f"'{field}' must be a list of rows")
        return [decode_row(relation, row) for row in rows]

    def _mutated(self, changed: int) -> dict:
        with self._lock:
            self._counters["mutations"] += 1
        return {"ok": True, "changed": changed, "generation": self.db.generation}

    def _op_insert(self, request: dict) -> dict:
        self._require_primary()
        return self._mutated(
            self.db.insert(request["relation"], *self._rows(request))
        )

    def _op_delete(self, request: dict) -> dict:
        self._require_primary()
        return self._mutated(
            self.db.delete(request["relation"], *self._rows(request))
        )

    def _op_delta(self, request: dict) -> dict:
        self._require_primary()

        def decode_side(side) -> dict[str, list[tuple]] | None:
            mapping = request.get(side)
            if mapping is None:
                return None
            if not isinstance(mapping, dict):
                raise ValueError(f"'{side}' must map relation names to row lists")
            return {
                name: [decode_row(name, row) for row in rows]
                for name, rows in mapping.items()
            }

        return self._mutated(
            self.db.apply_delta(decode_side("adds"), decode_side("removes"))
        )

    def _op_checkpoint(self, request: dict) -> dict:
        """Force a snapshot + WAL truncation on a durable session.

        On a memory-only session this reports ``checkpointed: false``
        rather than erroring — clients can issue it unconditionally.
        """
        written = self.db.checkpoint()
        response = {
            "ok": True,
            "checkpointed": written,
            "generation": self.db.generation,
        }
        stats = self.db.storage_stats
        if stats is not None:
            response["storage"] = stats
        return response

    def _op_health(self, request: dict) -> dict:
        """The session's health state machine, for monitors and clients.

        ``state`` is ``"ok"`` or ``"degraded"`` (mutations refused, see
        :class:`~repro.session.DegradedError`); while degraded,
        ``reason``/``since`` describe the durability failure and a
        successful ``checkpoint`` op heals the node.
        """
        return {
            "ok": True,
            **self.db.health,
            "role": self.role,
            "generation": self.db.generation,
        }

    def _op_promote(self, request: dict) -> dict:
        """Flip a replica writable: stop the tailer, checkpoint, serve writes.

        The failover step.  Idempotent — promoting a primary reports
        ``promoted: false`` and changes nothing.  The checkpoint makes
        the promotion durable: a restart of a durable node recovers the
        exact position it was promoted at.
        """
        with self._lock:
            was_replica = self._replica_mode
            self._replica_mode = False
        if self.tailer is not None:
            self.tailer.stop()
        checkpointed = self.db.checkpoint()
        return {
            "ok": True,
            "promoted": was_replica,
            "role": self.role,
            "checkpointed": checkpointed,
            "generation": self.db.generation,
        }

    def _op_replicate(self, request: dict) -> dict:
        # reached only by direct dict callers: the TCP path routes the op
        # through handle_or_stream/replicate_stream instead
        raise ValueError(
            "'replicate' is a streaming op: it holds its connection open and "
            "is only served over the TCP transport"
        )

    def _op_explain(self, request: dict) -> dict:
        prepared = self._prepare(request)
        mode = request.get("mode", "auto")
        return {"ok": True, "plan": prepared.plan(mode).to_dict()}

    def _op_dump(self, request: dict) -> dict:
        return {"ok": True, "instance": json.loads(instance_to_json(self.db.instance))}

    def _op_stats(self, request: dict) -> dict:
        with self._lock:
            counters = dict(self._counters)
        db = self.db
        response = {
            "ok": True,
            "proto": PROTO_VERSION,
            "features": list(self.features),
            "uptime_s": perf_counter() - self._started,
            "requests": counters,
            "result_cache": db.cache_stats,
            "generation": db.generation,
            "fact_count": db.instance.fact_count(),
            "relations": list(db.instance.relations),
            "semantics": db.semantics.key,
            "durable": db.path is not None,
            "role": self.role,
            "health": db.health,
        }
        replication: dict = {"role": self.role, "position": db.position}
        if self.tailer is not None:
            replication["tailer"] = self.tailer.status
        if self.feed is not None:
            replication["feed"] = self.feed.stats
        response["replication"] = replication
        storage = db.storage_stats
        if storage is not None:
            response["storage"] = storage
        return response

    def close(self) -> None:
        """Stop the replication machinery (idempotent).

        Ends every live ``replicate`` stream and the tailer thread; the
        TCP server calls this on shutdown.  The session itself stays
        open — it belongs to the caller.
        """
        if self.tailer is not None:
            self.tailer.stop()
        if self.feed is not None:
            self.feed.close()


class Server:
    """A bounded-thread-pool TCP front end for a :class:`QueryService`.

    One JSON request per line, one JSON response per line (UTF-8).  A
    fixed pool of daemon worker threads takes accepted connections off a
    queue, each handling one connection for its whole lifetime — so
    ``max_threads`` bounds the number of *concurrent clients*, extra
    connections wait for a slot, and a forgotten :meth:`shutdown` can
    never wedge interpreter exit.
    """

    def __init__(
        self,
        service: QueryService,
        host: str = "127.0.0.1",
        port: int = 0,
        max_threads: int = 8,
    ):
        self.service = service
        self._listener = socket.create_server((host, port))
        self._listener.settimeout(0.2)  # lets serve_forever notice shutdown
        self.address: tuple[str, int] = self._listener.getsockname()[:2]
        self._queue: queue.Queue = queue.Queue()
        self._workers = [
            threading.Thread(
                target=self._worker, daemon=True, name=f"repro-serve-{i}"
            )
            for i in range(max(1, max_threads))
        ]
        for worker in self._workers:
            worker.start()
        self._shutdown = threading.Event()
        self._thread: threading.Thread | None = None
        self._conns: set[socket.socket] = set()
        self._conns_lock = threading.Lock()
        # graceful drain: requests currently being served (replication
        # streams excluded — they are long-lived and ended by
        # service.close(), not by the drain window)
        self._draining = threading.Event()
        self._inflight = 0
        self._inflight_cond = threading.Condition()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def serve_forever(self) -> None:
        """Accept connections until :meth:`shutdown` (blocking)."""
        while not self._shutdown.is_set():
            try:
                conn, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break  # listener closed under us during shutdown
            try:
                _faults.fire("server.accept")
            except OSError:
                # injected accept failure: the brand-new connection is
                # dropped before ever reaching a worker
                try:
                    conn.close()
                except OSError:
                    pass
                continue
            self._queue.put(conn)

    def start(self) -> "Server":
        """Run :meth:`serve_forever` on a daemon thread (tests, examples)."""
        self._thread = threading.Thread(target=self.serve_forever, daemon=True)
        self._thread.start()
        return self

    def shutdown(self, drain_timeout_s: float = 0.0) -> None:
        """Stop accepting, optionally drain in-flight requests, then close.

        With ``drain_timeout_s > 0`` the shutdown is **graceful**: the
        listener closes immediately (no new connections), requests
        already being served get up to the drain window to finish and
        have their responses written, and only then are the remaining
        connections torn down.  Replication streams never count as
        in-flight — they are long-lived by design and are ended by the
        service shutdown regardless.
        """
        self._shutdown.set()
        self._draining.set()
        try:
            self._listener.close()
        except OSError:
            pass
        if drain_timeout_s > 0:
            deadline = monotonic() + drain_timeout_s
            with self._inflight_cond:
                while self._inflight > 0:
                    remaining = deadline - monotonic()
                    if remaining <= 0:
                        break  # window exhausted: fall through to hard close
                    self._inflight_cond.wait(remaining)
        # end replication streams first: their worker threads are parked
        # inside the feed and would otherwise never reach a poison pill
        self.service.close()
        # close connections still waiting for a worker slot first, so no
        # worker dequeues a live socket after the poison pills go in
        while True:
            try:
                queued = self._queue.get_nowait()
            except queue.Empty:
                break
            if queued is not None:
                try:
                    queued.close()
                except OSError:
                    pass
        with self._conns_lock:
            live = list(self._conns)
        for conn in live:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
        for _ in self._workers:
            self._queue.put(None)  # one poison pill per worker
        for worker in self._workers:
            worker.join(timeout=5)

    def __enter__(self) -> "Server":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    # per-connection loop
    # ------------------------------------------------------------------

    def _worker(self) -> None:
        while True:
            conn = self._queue.get()
            if conn is None:
                return
            try:
                self._client(conn)
            except Exception:  # noqa: BLE001 - a broken connection must
                pass  # never take the worker (and its queue slot) down

    def _request_done(self) -> None:
        with self._inflight_cond:
            self._inflight -= 1
            if self._inflight <= 0:
                self._inflight_cond.notify_all()

    def _client(self, conn: socket.socket) -> None:
        with self._conns_lock:
            self._conns.add(conn)
        try:
            with conn:
                reader = conn.makefile("r", encoding="utf-8", newline="\n")
                writer = conn.makefile("w", encoding="utf-8", newline="\n")
                for line in reader:
                    # an injected recv failure loses the request *before*
                    # any processing — the client never learns its fate
                    _faults.fire("server.recv")
                    line = line.strip()
                    if not line:
                        continue
                    if self._draining.is_set():
                        break  # draining: no new requests on this connection
                    with self._inflight_cond:
                        self._inflight += 1
                    tracked = True
                    try:
                        response, stream = self.service.handle_or_stream(line)
                        if stream is not None:
                            # the connection becomes a replication stream
                            # and occupies this worker slot until it ends;
                            # hand the in-flight slot back first so a drain
                            # never waits on a stream
                            self._request_done()
                            tracked = False
                            try:
                                for frame in stream:
                                    data = (
                                        frame if isinstance(frame, str) else json.dumps(frame)
                                    )
                                    writer.write(data + "\n")
                                    writer.flush()
                            finally:
                                stream.close()  # unregister the replica link
                            break
                        try:
                            # an injected send failure loses the *response*:
                            # the request was processed, the client cannot
                            # know — the indeterminate-write case
                            _faults.fire("server.send")
                            writer.write(response + "\n")
                            writer.flush()
                        except (OSError, ValueError):
                            break  # client went away mid-response
                    finally:
                        if tracked:
                            self._request_done()
        except OSError:
            pass  # connection torn down during shutdown
        finally:
            with self._conns_lock:
                self._conns.discard(conn)


def serve(
    db: Database | None = None,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    max_threads: int = 8,
    batch: bool = True,
    instance=None,
    semantics: str = "cwa",
    workers: int | None = None,
    path: str | None = None,
    replicate_from: str | tuple | None = None,
    feed: bool = True,
    heartbeat_s: float = 2.0,
    backoff_base: float = 0.2,
    backoff_cap: float = 5.0,
) -> Server:
    """Build a server around ``db`` (or a fresh session) and start it.

    Returns the started :class:`Server`; ``server.address`` carries the
    bound ``(host, port)``.  The caller owns shutdown::

        with serve(Database({"R": [(1, 2)]})) as server:
            ...  # connect to server.address

    ``path`` makes the fresh session durable (``Database(path=...)``):
    opening recovers the directory's snapshot + WAL, and every
    acknowledged mutation is journaled.  When ``workers > 1`` the
    oracle's process pool is forked *before* any client thread exists.

    ``replicate_from="HOST:PORT"`` makes the node a **replica**: a
    :class:`~repro.replication.replica.ReplicaTailer` streams the
    primary's WAL into ``db`` (started only after the listener is
    bound, so the tailer can announce this node's own address), and
    writes are rejected with a typed ``read_only`` error until the
    ``promote`` op.  Every node serves the ``replicate`` op itself
    unless ``feed=False``, so replicas can be chained.
    """
    if db is None:
        db = Database(instance, semantics=semantics, workers=workers, path=path)
    if db.workers and db.workers > 1:
        db.ensure_worker_pool()
    replication_feed = ReplicationFeed(db, heartbeat_s=heartbeat_s) if feed else None
    tailer = None
    if replicate_from is not None:
        tailer = ReplicaTailer(
            db, replicate_from, backoff_base=backoff_base, backoff_cap=backoff_cap
        )
    service = QueryService(db, batch=batch, feed=replication_feed, tailer=tailer)
    server = Server(service, host=host, port=port, max_threads=max_threads).start()
    if tailer is not None:
        tailer.announce = f"{server.address[0]}:{server.address[1]}"
        tailer.start()
    return server


class _AsyncConn:
    """Per-connection state on the event loop: writer + in-flight tasks."""

    __slots__ = ("reader", "writer", "write_lock", "tasks")

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self.reader = reader
        self.writer = writer
        #: serialises response writes: pipelined tasks finish in any
        #: order, but each response line must hit the socket whole
        self.write_lock = asyncio.Lock()
        self.tasks: set[asyncio.Task] = set()


class AsyncServer:
    """An asyncio front end for a :class:`QueryService` (protocol v2).

    One event loop multiplexes every connection, so an idle client
    costs a heap object instead of a parked thread; the blocking
    session work still runs on a bounded :class:`ThreadPoolExecutor`,
    feeding the same :class:`_BatchGate` group-commit the threaded
    server uses.  What the new transport adds:

    * **pipelining** — each request line becomes its own task; a client
      may send N requests before reading anything, and responses are
      written as they finish, **out of order**, correlated by the
      echoed ``id``;
    * **admission control** — at most ``max_inflight`` requests may
      occupy executor slots; the next one is shed *immediately* with a
      typed ``overloaded`` frame (never queued unboundedly, never a
      silent drop), and ``max_conns`` bounds accepted connections the
      same way;
    * **deadlines** — a request carrying ``deadline_ms`` gets at most
      that long of server residency; past it the client receives a
      typed ``deadline`` frame while the already-running op finishes
      in the background (its admission slot is held until it does);
    * **backpressure** — every write awaits ``drain()``, so a client
      that stops reading suspends its own responses instead of
      ballooning server memory, and ``idle_timeout_s`` reaps
      connections (slowloris included) that go silent mid-frame.

    Replication rides along: a ``replicate`` request hands its
    connection to a dedicated pump thread that walks the blocking
    :meth:`QueryService.replicate_stream` generator and ships frames
    through the loop, so one slow replica never stalls queries.

    Runs purely async (``await server.start_async()`` /
    ``await server.shutdown_async()``) or behind the same sync facade
    as the threaded :class:`Server` (``start()`` spins a daemon thread
    owning the loop; ``shutdown()`` joins it), so ``repro serve``,
    tests and benchmarks drive both servers identically.
    """

    def __init__(
        self,
        service: QueryService,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_inflight: int = 64,
        max_conns: int = 1024,
        idle_timeout_s: float = 0.0,
        executor_threads: int = 8,
    ):
        self.service = service
        self._host = host
        self._port = port
        self.max_inflight = max(1, max_inflight)
        self.max_conns = max(1, max_conns)
        self.idle_timeout_s = idle_timeout_s
        self.executor_threads = max(1, executor_threads)
        self.address: tuple[str, int] | None = None
        self._server: asyncio.base_events.Server | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._conns: set[_AsyncConn] = set()
        self._tasks: set[asyncio.Task] = set()
        self._inflight = 0
        self._draining = False
        # sync-facade state
        self._thread: threading.Thread | None = None
        self._stop_requested: asyncio.Event | None = None
        self._drain_timeout_s = 0.0
        self._startup_error: BaseException | None = None
        self._done = threading.Event()

    # ------------------------------------------------------------------
    # async lifecycle
    # ------------------------------------------------------------------

    async def start_async(self) -> "AsyncServer":
        """Bind and start accepting on the running event loop."""
        self._loop = asyncio.get_running_loop()
        self._executor = ThreadPoolExecutor(
            max_workers=self.executor_threads, thread_name_prefix="repro-async"
        )
        self._server = await asyncio.start_server(
            self._handle_conn, self._host, self._port
        )
        self.address = self._server.sockets[0].getsockname()[:2]
        return self

    async def shutdown_async(self, drain_timeout_s: float = 0.0) -> None:
        """Stop accepting, optionally drain in-flight requests, then close.

        Same contract as the threaded :meth:`Server.shutdown`:
        replication streams never count as in-flight (they are ended by
        ``service.close()``), and past the drain window remaining
        connections are torn down hard.
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        pending = {task for task in self._tasks if not task.done()}
        if drain_timeout_s > 0 and pending:
            await asyncio.wait(pending, timeout=drain_timeout_s)
        # end replication streams first: their pump threads are parked
        # inside the feed and exit when it closes
        self.service.close()
        for conn in list(self._conns):
            conn.writer.close()
        await asyncio.sleep(0)  # let per-connection loops notice
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)

    # ------------------------------------------------------------------
    # sync facade (mirrors the threaded Server)
    # ------------------------------------------------------------------

    def start(self) -> "AsyncServer":
        """Run the event loop on a daemon thread and block until bound."""
        started = threading.Event()
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._main(started)),
            daemon=True,
            name="repro-async-loop",
        )
        self._thread.start()
        started.wait()
        if self._startup_error is not None:
            raise self._startup_error
        return self

    async def _main(self, started: threading.Event) -> None:
        try:
            try:
                await self.start_async()
                self._stop_requested = asyncio.Event()
            except BaseException as err:  # noqa: BLE001 - reported in start()
                self._startup_error = err
                return
            finally:
                started.set()
            await self._stop_requested.wait()
            await self.shutdown_async(self._drain_timeout_s)
        finally:
            self._done.set()

    def serve_forever(self) -> None:
        """Park the calling thread until :meth:`shutdown` (the CLI's loop).

        The event loop runs on its own thread; this wait keeps the main
        thread interruptible, so Ctrl-C / ``SIGTERM`` land here and the
        caller's ``finally`` can run a graceful :meth:`shutdown`.
        """
        while not self._done.wait(0.2):
            pass

    def shutdown(self, drain_timeout_s: float = 0.0) -> None:
        """Thread-safe shutdown of a :meth:`start`-ed server (idempotent)."""
        thread, self._thread = self._thread, None
        if thread is None:
            return
        self._drain_timeout_s = drain_timeout_s
        loop, stop = self._loop, self._stop_requested
        if loop is not None and stop is not None and not loop.is_closed():
            try:
                loop.call_soon_threadsafe(stop.set)
            except RuntimeError:
                pass  # loop already closing
        thread.join(timeout=drain_timeout_s + 10)

    def __enter__(self) -> "AsyncServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    # per-connection loop
    # ------------------------------------------------------------------

    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = _AsyncConn(reader, writer)
        try:
            try:
                await _faults.async_fire("server.accept")
            except OSError:
                return  # injected accept failure: dropped before serving
            if self._draining or len(self._conns) >= self.max_conns:
                # typed refusal, never a silent drop: the client learns
                # *why* before the connection closes
                self.service.bump("requests")
                self.service.bump("overloaded")
                self.service.bump("errors")
                await self._write(
                    conn,
                    json.dumps(
                        {
                            "ok": False,
                            "error": f"overloaded: connection limit "
                            f"({self.max_conns}) reached",
                            "error_type": "overloaded",
                            "max_conns": self.max_conns,
                        }
                    ),
                )
                return
            self._conns.add(conn)
            await self._read_requests(conn)
        except Exception:  # noqa: BLE001 - a broken connection must never
            pass  # surface as an unhandled-task error
        finally:
            if conn.tasks:
                # half-close etiquette: in-flight pipelined responses are
                # still written (or fail against the closed socket)
                await asyncio.gather(*list(conn.tasks), return_exceptions=True)
            self._conns.discard(conn)
            writer.close()
            try:
                await writer.wait_closed()
            except (OSError, ConnectionError):
                pass

    async def _read_requests(self, conn: _AsyncConn) -> None:
        while True:
            try:
                if self.idle_timeout_s > 0:
                    line = await asyncio.wait_for(
                        conn.reader.readline(), self.idle_timeout_s
                    )
                else:
                    line = await conn.reader.readline()
            except asyncio.TimeoutError:
                return  # idle (or slowloris mid-frame): reap the connection
            except (OSError, ValueError):
                return
            if not line:
                return  # EOF
            try:
                # an injected recv failure loses the request *before* any
                # processing — the client never learns its fate
                await _faults.async_fire("server.recv")
            except OSError:
                return
            text = line.decode("utf-8", errors="replace").strip()
            if not text:
                continue
            if self._draining:
                return  # draining: no new requests on this connection
            try:
                request = json.loads(text)
            except ValueError:
                request = None
            if isinstance(request, dict) and request.get("op") == "replicate":
                # the connection becomes a replication stream until EOF
                await self._serve_replicate(conn, request)
                return
            task = asyncio.create_task(self._serve_request(conn, request, text))
            conn.tasks.add(task)
            self._tasks.add(task)
            task.add_done_callback(conn.tasks.discard)
            task.add_done_callback(self._tasks.discard)

    # ------------------------------------------------------------------
    # per-request task
    # ------------------------------------------------------------------

    def _release_slot(self, fut: asyncio.Future) -> None:
        self._inflight -= 1
        if not fut.cancelled():
            fut.exception()  # consume: handle() never raises

    async def _serve_request(self, conn: _AsyncConn, request, text: str) -> None:
        try:
            if not isinstance(request, dict):
                # malformed JSON (or a non-object): the service's own
                # error path, inline — it never touches the session
                await self._respond(conn, self.service.handle_line(text))
                return
            rid = request.get("id")
            deadline_ms = request.get("deadline_ms")
            if deadline_ms is not None and (
                isinstance(deadline_ms, bool)
                or not isinstance(deadline_ms, (int, float))
                or deadline_ms <= 0
            ):
                self.service.bump("requests")
                self.service.bump("errors")
                await self._respond_obj(
                    conn,
                    {"ok": False, "error": "'deadline_ms' must be a positive number"},
                    rid,
                )
                return
            if self._inflight >= self.max_inflight:
                # admission control: shed *now* with a typed frame rather
                # than queue without bound — the client knows nothing ran
                self.service.bump("requests")
                self.service.bump("overloaded")
                self.service.bump("errors")
                await self._respond_obj(
                    conn,
                    {
                        "ok": False,
                        "error": f"overloaded: {self.max_inflight} requests "
                        f"already in flight",
                        "error_type": "overloaded",
                        "max_inflight": self.max_inflight,
                    },
                    rid,
                )
                return
            self._inflight += 1
            fut = self._loop.run_in_executor(
                self._executor, self.service.handle, request
            )
            fut.add_done_callback(self._release_slot)
            if deadline_ms is not None:
                try:
                    # shield: the executor job cannot be interrupted, so a
                    # blown deadline abandons the wait (the slot stays
                    # held until the job truly finishes) and answers now
                    response = await asyncio.wait_for(
                        asyncio.shield(fut), deadline_ms / 1000.0
                    )
                except asyncio.TimeoutError:
                    self.service.bump("deadline_expired")
                    response = {
                        "ok": False,
                        "error": f"deadline: request exceeded its "
                        f"deadline_ms={deadline_ms} budget",
                        "error_type": "deadline",
                        "deadline_ms": deadline_ms,
                    }
            else:
                response = await fut
            await self._respond_obj(conn, response, rid)
        except Exception:  # noqa: BLE001 - client went away mid-response;
            pass  # the response is lost, the connection already dead

    async def _write(self, conn: _AsyncConn, data: str) -> None:
        async with conn.write_lock:
            conn.writer.write((data + "\n").encode("utf-8"))
            await conn.writer.drain()  # socket-level backpressure

    async def _respond(self, conn: _AsyncConn, data: str) -> None:
        try:
            # an injected send failure loses the *response*: the request
            # was processed, the client cannot know — the
            # indeterminate-write case
            await _faults.async_fire("server.send")
        except OSError:
            conn.writer.close()  # the client sees EOF, not silence forever
            return
        await self._write(conn, data)

    async def _respond_obj(self, conn: _AsyncConn, response: dict, rid) -> None:
        if rid is not None and "id" not in response:
            response["id"] = rid
        await self._respond(conn, json.dumps(response))

    # ------------------------------------------------------------------
    # replication streaming
    # ------------------------------------------------------------------

    async def _serve_replicate(self, conn: _AsyncConn, request: dict) -> None:
        """Pump the blocking frame generator through the loop, until EOF.

        The generator (hello → deltas/snapshots/heartbeats, forever)
        blocks inside the feed, so it runs on its own daemon thread and
        ships each frame via ``run_coroutine_threadsafe`` — which blocks
        the pump until the frame is drained, propagating socket
        backpressure all the way into the feed's ring buffer.
        """
        loop = self._loop
        stream = self.service.replicate_stream(request)

        def pump() -> None:
            try:
                for frame in stream:
                    data = frame if isinstance(frame, str) else json.dumps(frame)
                    asyncio.run_coroutine_threadsafe(
                        self._write(conn, data), loop
                    ).result()
            except BaseException:  # noqa: BLE001 - replica went away, loop
                pass  # closed, or the feed ended the stream mid-frame
            finally:
                stream.close()  # unregister the replica link
                try:
                    loop.call_soon_threadsafe(conn.writer.close)
                except RuntimeError:
                    pass  # loop already closed at shutdown

        threading.Thread(
            target=pump, daemon=True, name="repro-async-replicate"
        ).start()
        try:
            # the replica sends nothing further: park until it disconnects
            while await conn.reader.read(4096):
                pass
        except (OSError, ValueError):
            pass
        conn.writer.close()  # ends the pump at its next frame


def async_serve(
    db: Database | None = None,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    max_inflight: int = 64,
    max_conns: int = 1024,
    idle_timeout_s: float = 0.0,
    executor_threads: int = 8,
    batch: bool = True,
    instance=None,
    semantics: str = "cwa",
    workers: int | None = None,
    path: str | None = None,
    replicate_from: str | tuple | None = None,
    feed: bool = True,
    heartbeat_s: float = 2.0,
    backoff_base: float = 0.2,
    backoff_cap: float = 5.0,
) -> AsyncServer:
    """:func:`serve`, but on the asyncio core (protocol v2, full features).

    Same session/replication wiring and the same started-server
    contract; the extra knobs are the async transport's admission
    controls.  The returned server runs its loop on a daemon thread —
    callers that want to *own* the loop build an :class:`AsyncServer`
    directly and ``await server.start_async()``.

        with async_serve(Database({"R": [(1, 2)]})) as server:
            ...  # connect to server.address

    """
    if db is None:
        db = Database(instance, semantics=semantics, workers=workers, path=path)
    if db.workers and db.workers > 1:
        db.ensure_worker_pool()
    replication_feed = ReplicationFeed(db, heartbeat_s=heartbeat_s) if feed else None
    tailer = None
    if replicate_from is not None:
        tailer = ReplicaTailer(
            db, replicate_from, backoff_base=backoff_base, backoff_cap=backoff_cap
        )
    service = QueryService(
        db, batch=batch, feed=replication_feed, tailer=tailer, features=FEATURES
    )
    server = AsyncServer(
        service,
        host=host,
        port=port,
        max_inflight=max_inflight,
        max_conns=max_conns,
        idle_timeout_s=idle_timeout_s,
        executor_threads=executor_threads,
    ).start()
    if tailer is not None:
        tailer.announce = f"{server.address[0]}:{server.address[1]}"
        tailer.start()
    return server
