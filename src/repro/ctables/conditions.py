"""Conditions for conditional tables: propositional formulas over equalities.

Conditional tables [Imielinski & Lipski 1984] — the paper's Section 12
points to them as the representation system where constraints and
higher-complexity query answering live — attach to each tuple a
condition built from (in)equalities over nulls and constants.  A
valuation satisfies a condition in the obvious way; a tuple is present
in the represented world iff its condition holds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Mapping

from repro.data.values import Null

__all__ = [
    "Condition",
    "CTrue",
    "CFalse",
    "CEq",
    "CAnd",
    "COr",
    "CNot",
    "TRUE_C",
    "FALSE_C",
    "ceq",
    "cneq",
    "cand",
    "cor",
]


class Condition:
    """Base class; subclasses are frozen dataclasses with ``satisfied``."""

    __slots__ = ()

    def satisfied(self, valuation: Mapping[Null, Hashable]) -> bool:
        """Truth under a valuation (nulls not in the mapping stay themselves)."""
        raise NotImplementedError

    def nulls(self) -> frozenset[Null]:
        """The nulls mentioned by the condition."""
        raise NotImplementedError

    def constants(self) -> frozenset[Hashable]:
        """The constants mentioned by the condition."""
        raise NotImplementedError

    def __and__(self, other: "Condition") -> "Condition":
        return cand(self, other)

    def __or__(self, other: "Condition") -> "Condition":
        return cor(self, other)

    def __invert__(self) -> "Condition":
        return CNot(self)


def _resolve(term: Hashable, valuation: Mapping[Null, Hashable]) -> Hashable:
    if isinstance(term, Null):
        return valuation.get(term, term)
    return term


@dataclass(frozen=True, slots=True, repr=False)
class CTrue(Condition):
    def satisfied(self, valuation) -> bool:
        return True

    def nulls(self) -> frozenset[Null]:
        return frozenset()

    def constants(self) -> frozenset[Hashable]:
        return frozenset()

    def __repr__(self) -> str:
        return "⊤"


@dataclass(frozen=True, slots=True, repr=False)
class CFalse(Condition):
    def satisfied(self, valuation) -> bool:
        return False

    def nulls(self) -> frozenset[Null]:
        return frozenset()

    def constants(self) -> frozenset[Hashable]:
        return frozenset()

    def __repr__(self) -> str:
        return "⊥cond"


TRUE_C = CTrue()
FALSE_C = CFalse()


@dataclass(frozen=True, slots=True, repr=False)
class CEq(Condition):
    """Equality between two terms (nulls or constants)."""

    left: Hashable
    right: Hashable

    def satisfied(self, valuation) -> bool:
        return _resolve(self.left, valuation) == _resolve(self.right, valuation)

    def nulls(self) -> frozenset[Null]:
        return frozenset(t for t in (self.left, self.right) if isinstance(t, Null))

    def constants(self) -> frozenset[Hashable]:
        return frozenset(t for t in (self.left, self.right) if not isinstance(t, Null))

    def __repr__(self) -> str:
        return f"{self.left!r}={self.right!r}"


@dataclass(frozen=True, slots=True, repr=False)
class CAnd(Condition):
    subs: tuple[Condition, ...]

    def satisfied(self, valuation) -> bool:
        return all(s.satisfied(valuation) for s in self.subs)

    def nulls(self) -> frozenset[Null]:
        out: frozenset[Null] = frozenset()
        for s in self.subs:
            out |= s.nulls()
        return out

    def constants(self) -> frozenset[Hashable]:
        out: frozenset[Hashable] = frozenset()
        for s in self.subs:
            out |= s.constants()
        return out

    def __repr__(self) -> str:
        return "(" + " ∧ ".join(map(repr, self.subs)) + ")"


@dataclass(frozen=True, slots=True, repr=False)
class COr(Condition):
    subs: tuple[Condition, ...]

    def satisfied(self, valuation) -> bool:
        return any(s.satisfied(valuation) for s in self.subs)

    def nulls(self) -> frozenset[Null]:
        out: frozenset[Null] = frozenset()
        for s in self.subs:
            out |= s.nulls()
        return out

    def constants(self) -> frozenset[Hashable]:
        out: frozenset[Hashable] = frozenset()
        for s in self.subs:
            out |= s.constants()
        return out

    def __repr__(self) -> str:
        return "(" + " ∨ ".join(map(repr, self.subs)) + ")"


@dataclass(frozen=True, slots=True, repr=False)
class CNot(Condition):
    sub: Condition

    def satisfied(self, valuation) -> bool:
        return not self.sub.satisfied(valuation)

    def nulls(self) -> frozenset[Null]:
        return self.sub.nulls()

    def constants(self) -> frozenset[Hashable]:
        return self.sub.constants()

    def __repr__(self) -> str:
        return f"¬{self.sub!r}"


def ceq(left: Hashable, right: Hashable) -> Condition:
    """Equality condition, constant-folded when both sides are constants."""
    if not isinstance(left, Null) and not isinstance(right, Null):
        return TRUE_C if left == right else FALSE_C
    return CEq(left, right)


def cneq(left: Hashable, right: Hashable) -> Condition:
    """Inequality condition (``¬(left = right)``), constant-folded."""
    eq = ceq(left, right)
    if eq is TRUE_C:
        return FALSE_C
    if eq is FALSE_C:
        return TRUE_C
    return CNot(eq)


def cand(*subs: Condition) -> Condition:
    """Conjunction with unit/absorbing simplification."""
    flat: list[Condition] = []
    for sub in subs:
        if isinstance(sub, CFalse):
            return FALSE_C
        if isinstance(sub, CTrue):
            continue
        if isinstance(sub, CAnd):
            flat.extend(sub.subs)
        else:
            flat.append(sub)
    if not flat:
        return TRUE_C
    if len(flat) == 1:
        return flat[0]
    return CAnd(tuple(flat))


def cor(*subs: Condition) -> Condition:
    """Disjunction with unit/absorbing simplification."""
    flat: list[Condition] = []
    for sub in subs:
        if isinstance(sub, CTrue):
            return TRUE_C
        if isinstance(sub, CFalse):
            continue
        if isinstance(sub, COr):
            flat.extend(sub.subs)
        else:
            flat.append(sub)
    if not flat:
        return FALSE_C
    if len(flat) == 1:
        return flat[0]
    return COr(tuple(flat))
