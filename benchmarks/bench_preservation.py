"""Experiments C4.9 and P5.1 — preservation under homomorphism classes.

Corollary 4.9 ties each semantics to a homomorphism class; Theorem 5.2 /
Proposition 5.1 tie fragments to preservation.  The benches sweep random
fragment queries against complete-instance pairs connected by homs of
each class, count violations (expected 0 inside the fragment), and
reproduce the repeated-guard-variable counterexample.
"""

import random

import pytest

from repro.core.monotone import preservation_counterexample
from repro.data.generate import random_complete_instance
from repro.data.instance import Instance
from repro.data.values import Null
from repro.logic.generate import random_sentence
from repro.logic.parser import parse
from repro.logic.queries import Query

from conftest import SCHEMA

#: fragment → its preservation class (Cor. 4.9 / Thm 5.2)
FRAGMENT_TO_CLASS = {
    "EPos": "hom",
    "Pos": "onto",
    "PosForallG": "strong_onto",
}


def make_pairs(seed: int, n: int):
    """Pairs of complete instances (hom existence filtered in the checker)."""
    rng = random.Random(seed)
    pairs = []
    for _ in range(n):
        source = random_complete_instance(SCHEMA, rng, n_facts=rng.randint(1, 3), constants=(1, 2))
        target = random_complete_instance(
            SCHEMA, rng, n_facts=rng.randint(1, 4), constants=(1, 2, 3)
        )
        pairs.append((source, target))
    return pairs


@pytest.mark.parametrize("fragment,hom_class", sorted(FRAGMENT_TO_CLASS.items()))
def test_fragment_preserved_under_its_class(benchmark, fragment, hom_class):
    rng = random.Random(0x59 + hash(fragment) % 100)
    pairs = make_pairs(seed=59, n=6)

    def run():
        violations = 0
        for _ in range(6):
            query = Query.boolean(random_sentence(SCHEMA, rng, fragment, max_depth=2))
            ce = preservation_counterexample(query, pairs, hom_class)
            violations += ce is not None
        return violations

    violations = benchmark(run)
    benchmark.extra_info["fragment"] = fragment
    benchmark.extra_info["hom_class"] = hom_class
    benchmark.extra_info["violations"] = violations
    assert violations == 0


def test_prop_5_1_repeated_guard_counterexample(benchmark):
    """∀x (R(x,x) → S(x)) with repeated guard variable is NOT preserved
    under strong onto homomorphisms (remark after Prop. 5.1)."""
    q = Query.boolean(parse("forall v . R(v, v) -> S(v)"))
    a, b, c = Null("a"), Null("b"), Null("c")
    source = Instance({"R": [(a, b)]})
    target = Instance({"R": [(c, c)]})

    def run():
        return preservation_counterexample(q, [(source, target)], "strong_onto")

    ce = benchmark(run)
    benchmark.extra_info["counterexample_found"] = ce is not None
    assert ce is not None


def test_proper_guard_is_preserved(benchmark):
    """The same rule with distinct guard variables IS preserved."""
    q = Query.boolean(parse("forall v, w . R(v, w) -> exists u . R(w, u)"))
    pairs = make_pairs(seed=61, n=8)

    def run():
        return preservation_counterexample(q, pairs, "strong_onto")

    ce = benchmark(run)
    assert ce is None
