"""Ablations — the design choices DESIGN.md calls out, measured.

* pool size: the ``|Null(D)|+1`` fresh-constant rule vs. smaller pools —
  smaller pools are faster but *change answers* (exactness needs the
  spare constant);
* intersection pruning in the certain-answer oracle (re-check only
  surviving candidate tuples) vs. full re-enumeration per world;
* union bound of the powerset semantics: certain answers stabilise at
  small bounds on these workloads, while cost grows combinatorially;
* semi-naive vs naive datalog fixpoint iteration.
"""

import random

import pytest

from repro.core.certain import certain_answers, default_pool
from repro.data.generate import path, random_instance
from repro.data.instance import Instance
from repro.data.schema import Schema
from repro.data.values import Null
from repro.datalog import Atom, Program, Rule, evaluate_program
from repro.logic.ast import Var
from repro.logic.parser import parse
from repro.logic.queries import Query
from repro.semantics import get_semantics

SCHEMA = Schema({"R": 2, "S": 1})
X, Y = Null("x"), Null("y")
JOIN = Query(parse("exists z (R(a, z) & R(z, b))"), ("a", "b"))


def make_instance(seed=7, n_facts=5, n_nulls=3):
    rng = random.Random(seed)
    return random_instance(SCHEMA, rng, n_facts=n_facts, constants=(1, 2, 3), n_nulls=n_nulls)


# ----------------------------------------------------------------------
# pool-size ablation
# ----------------------------------------------------------------------

@pytest.mark.parametrize("n_fresh", [0, 1, 4])
def test_pool_size_ablation(benchmark, n_fresh):
    """Certain answers with artificially small pools: cost vs. fidelity."""
    instance = Instance({"R": [(1, X), (X, Y), (Y, 2)]})
    sem = get_semantics("cwa")
    reference = certain_answers(JOIN, instance, sem)  # default pool (n+1 fresh)
    pool = default_pool(instance, JOIN, n_fresh=n_fresh)

    answers = benchmark(certain_answers, JOIN, instance, sem, pool)
    benchmark.extra_info["n_fresh"] = n_fresh
    benchmark.extra_info["matches_reference"] = answers == reference
    # with zero fresh constants the oracle is *wrong on this instance*
    # (nulls can only collapse onto existing constants, inflating the
    # intersection); with ≥1 it happens to stabilise here.
    if n_fresh == 0:
        assert answers >= reference
    else:
        assert answers == reference


# ----------------------------------------------------------------------
# oracle pruning ablation
# ----------------------------------------------------------------------

def certain_answers_unpruned(query, instance, semantics):
    """The oracle without candidate pruning: full Q(E) per world."""
    pool = default_pool(instance, query)
    result = None
    for complete in semantics.expand(instance, pool, schema=instance.schema()):
        rows = query.eval_raw(complete)
        result = rows if result is None else result & rows
        if not result:
            break
    return result


def test_oracle_with_pruning(benchmark):
    instance = make_instance()
    sem = get_semantics("cwa")
    answers = benchmark(certain_answers, JOIN, instance, sem)
    benchmark.extra_info["variant"] = "pruned (ship default)"
    assert answers == certain_answers_unpruned(JOIN, instance, sem)


def test_oracle_without_pruning(benchmark):
    instance = make_instance()
    sem = get_semantics("cwa")
    answers = benchmark(certain_answers_unpruned, JOIN, instance, sem)
    benchmark.extra_info["variant"] = "unpruned baseline"
    assert answers == certain_answers(JOIN, instance, sem)


# ----------------------------------------------------------------------
# powerset union-bound ablation
# ----------------------------------------------------------------------

@pytest.mark.parametrize("bound", [1, 2, 4])
def test_powerset_union_bound(benchmark, bound):
    instance = Instance({"R": [(X, Y)]})
    q = Query.boolean(parse("forall a, b . R(a, b) -> exists u . R(u, b)"))
    sem = get_semantics("pcwa")
    holds = benchmark(
        lambda: bool(certain_answers(q, instance, sem, extra_facts=bound))
    )
    benchmark.extra_info["union_bound"] = bound
    # answers already stabilise at bound 1 for this guarded query
    assert holds is True


# ----------------------------------------------------------------------
# datalog iteration-strategy ablation
# ----------------------------------------------------------------------

x, y, z = Var("x"), Var("y"), Var("z")
TC = Program(
    (
        Rule(Atom("T", (x, y)), (Atom("E", (x, y)),)),
        Rule(Atom("T", (x, z)), (Atom("E", (x, y)), Atom("T", (y, z)))),
    )
)


@pytest.mark.parametrize("semi_naive", [True, False], ids=["semi-naive", "naive-iter"])
def test_datalog_iteration_strategy(benchmark, semi_naive):
    edb = path(24, values=list(range(25)))
    fixpoint = benchmark(evaluate_program, TC, edb, semi_naive)
    benchmark.extra_info["strategy"] = "semi-naive" if semi_naive else "naive"
    assert len(fixpoint.tuples("T")) == 24 * 25 // 2
