"""Integrity constraints and their effect on certain answers (Section 12)."""

from repro.constraints.deps import FunctionalDependency, Key, satisfies, violations
from repro.constraints.semantics import ConstrainedSemantics, certain_answers_under

__all__ = [
    "FunctionalDependency",
    "Key",
    "satisfies",
    "violations",
    "ConstrainedSemantics",
    "certain_answers_under",
]
