"""The closed-world semantics ``[[D]]_CWA = { h(D) | h a valuation }``.

Under CWA nothing may be added after substituting constants for nulls:
``R_sem`` is the identity relation (Section 4.1), and the associated
homomorphism class is the *strong onto* homomorphisms ``h : D → h(D)``
(Corollary 4.9).  Naive evaluation is sound for ``Pos+∀G`` (Thm 5.2).
"""

from __future__ import annotations

from typing import Hashable, Iterator, Sequence

from repro.data.instance import Instance
from repro.data.schema import Schema
from repro.homs.search import has_homomorphism
from repro.semantics.base import Semantics, guard_limit, iter_valuation_images

__all__ = ["CWA"]


class CWA(Semantics):
    """Closed-world assumption."""

    key = "cwa"
    name = "CWA"
    notation = "[[·]]_CWA"
    saturated = True
    hom_class = "strong onto homomorphisms"
    sound_fragment = "PosForallG"
    substitution_only = True  # [[D]]_CWA is exactly the valuation images

    def expand(
        self,
        instance: Instance,
        pool: Sequence[Hashable],
        schema: Schema | None = None,
        extra_facts: int | None = None,
        limit: int = 500_000,
    ) -> Iterator[Instance]:
        guard_limit(len(pool) ** len(instance.nulls()), limit, "CWA expansion")
        yield from iter_valuation_images(instance, pool)

    def contains(self, instance: Instance, complete: Instance) -> bool:
        self._check_complete(complete)
        # E ∈ [[D]]_CWA iff some valuation maps D exactly onto E.
        return has_homomorphism(
            instance,
            complete,
            fix_constants=True,
            require_complete_image=True,
            strong_onto=True,
        )
