"""Three-valued FO evaluation: what SQL would answer.

Evaluates the same formula AST as :mod:`repro.logic.eval`, but with
SQL's rules on Codd databases:

* an equality involving a null is *unknown*;
* a relational atom holds *true* if the exact row (nulls and all) is
  present — and is *unknown* if a row unifies with it through nulls,
  mirroring SQL's positional comparison semantics;
* connectives and quantifiers are Kleene's (∃ = big or, ∀ = big and);
* a k-ary query returns the rows whose condition evaluates to TRUE —
  SQL's ``WHERE`` keeps only true rows.

This evaluator exists to *contrast* with certain answers: the paper's
introduction shows SQL's answers can be arbitrarily wrong in both
directions, and :mod:`repro.sql3.compare` quantifies that on workloads.
"""

from __future__ import annotations

from typing import Hashable, Iterator, Mapping

from repro.data.instance import Instance
from repro.data.values import Null
from repro.logic.ast import (
    And,
    EqAtom,
    Exists,
    FalseF,
    Forall,
    Formula,
    Implies,
    Not,
    Or,
    RelAtom,
    Term,
    TrueF,
    Var,
)
from repro.logic.transform import free_vars
from repro.sql3.truth import Truth, t_and, t_implies, t_not, t_or

__all__ = ["evaluate3", "holds3", "answers3"]

Binding = Mapping[Var, Hashable]


def _resolve(term: Term, binding: Binding) -> Hashable:
    if isinstance(term, Var):
        try:
            return binding[term]
        except KeyError:
            raise ValueError(f"unbound variable {term!r} during 3VL evaluation") from None
    return term


def _eq3(left: Hashable, right: Hashable) -> Truth:
    """SQL equality: unknown whenever either side is a null."""
    if isinstance(left, Null) or isinstance(right, Null):
        return Truth.UNKNOWN
    return Truth.of(left == right)


def _atom3(row: tuple, candidates) -> Truth:
    """SQL row membership.

    TRUE when the row is *syntactically* stored (variables bound to a
    row's own cells are identities, not comparisons — SQL's ``FROM``
    binds rows without comparing); otherwise the best position-wise
    comparison against stored rows: UNKNOWN if blocked only by nulls,
    FALSE if some constant position genuinely mismatches everywhere.
    """
    if row in candidates:
        return Truth.TRUE
    best = Truth.FALSE
    for candidate in candidates:
        verdict = t_and(*(_eq3(a, b) for a, b in zip(row, candidate))) if row else Truth.TRUE
        if verdict is Truth.TRUE:
            return Truth.TRUE
        best = t_or(best, verdict)
    return best


def evaluate3(formula: Formula, instance: Instance, binding: Binding | None = None) -> Truth:
    """The SQL-style three-valued truth value of ``formula`` on ``instance``."""
    binding = dict(binding or {})
    # cached on the (immutable) instance — answers3 calls this once per
    # candidate binding, so re-sorting per call would dominate
    domain = instance.sorted_adom()

    def rec(phi: Formula, env: dict[Var, Hashable]) -> Truth:
        match phi:
            case TrueF():
                return Truth.TRUE
            case FalseF():
                return Truth.FALSE
            case RelAtom(name=name, terms=terms):
                row = tuple(_resolve(t, env) for t in terms)
                return _atom3(row, instance.tuples(name))
            case EqAtom(left=left, right=right):
                return _eq3(_resolve(left, env), _resolve(right, env))
            case Not(sub=sub):
                return t_not(rec(sub, env))
            case And(subs=subs):
                return t_and(*(rec(s, env) for s in subs))
            case Or(subs=subs):
                return t_or(*(rec(s, env) for s in subs))
            case Implies(left=left, right=right):
                return t_implies(rec(left, env), rec(right, env))
            case Exists(vars=vs, sub=sub):
                return _block(vs, sub, env, existential=True)
            case Forall(vars=vs, sub=sub):
                return _block(vs, sub, env, existential=False)
        raise TypeError(f"not a formula: {phi!r}")

    def _block(vs, sub, env, existential: bool) -> Truth:
        combine = t_or if existential else t_and
        start = Truth.FALSE if existential else Truth.TRUE

        def assign(index: int) -> Truth:
            if index == len(vs):
                return rec(sub, env)
            var = vs[index]
            saved = env.get(var, _MISSING)
            acc = start
            for value in domain:
                env[var] = value
                acc = combine(acc, assign(index + 1))
                if (existential and acc is Truth.TRUE) or (
                    not existential and acc is Truth.FALSE
                ):
                    break
            if saved is _MISSING:
                env.pop(var, None)
            else:
                env[var] = saved
            return acc

        return assign(0)

    return rec(formula, binding)


_MISSING = object()


def holds3(formula: Formula, instance: Instance) -> Truth:
    """3VL truth value of a sentence."""
    unbound = free_vars(formula)
    if unbound:
        names = ", ".join(sorted(v.name for v in unbound))
        raise ValueError(f"formula has free variables ({names}); use answers3()")
    return evaluate3(formula, instance)


def answers3(
    formula: Formula,
    instance: Instance,
    answer_vars: tuple[Var, ...],
) -> frozenset[tuple[Hashable, ...]]:
    """SQL's answer set: bindings whose condition is TRUE (not unknown)."""
    missing = free_vars(formula) - set(answer_vars)
    if missing:
        names = ", ".join(sorted(v.name for v in missing))
        raise ValueError(f"answer variables do not cover free variables: {names}")
    domain = instance.sorted_adom()
    out: set[tuple[Hashable, ...]] = set()

    def assign(index: int, env: dict[Var, Hashable]) -> Iterator[None]:
        if index == len(answer_vars):
            if evaluate3(formula, instance, env) is Truth.TRUE:
                out.add(tuple(env[v] for v in answer_vars))
            return
        for value in domain:
            env[answer_vars[index]] = value
            assign(index + 1, env)
        env.pop(answer_vars[index], None)

    assign(0, {})
    return frozenset(out)
