"""Tests for the abstract database-domain framework (Sections 3 and 9).

These tests *execute the paper's theorems* on finite micro-domains:
Proposition 3.2 (fairness characterisation), Theorem 3.1 (naive ⇔ weak
monotonicity on saturated domains), Proposition 3.3 (⇔ monotonicity on
fair saturated domains), Theorem 9.1 / Corollary 9.3 (representative
sets).
"""

import itertools

import pytest

from repro.semantics.domain import DatabaseDomain


def make_domain(sem: dict, complete=None, iso_key=lambda x: x) -> DatabaseDomain:
    objects = frozenset(sem)
    if complete is None:
        complete = frozenset(c for members in sem.values() for c in members)
    return DatabaseDomain(
        objects, frozenset(complete), {k: frozenset(v) for k, v in sem.items()}, iso_key
    )


#: a fair, saturated micro-domain: objects a > x > bottom, with
#: "complete" objects a, b; iso classes identify x with a.
FAIR = {
    "a": {"a"},
    "b": {"b"},
    "x": {"a", "b"},  # x is incomplete: describes both
}


class TestConstruction:
    def test_empty_semantics_rejected(self):
        with pytest.raises(ValueError):
            make_domain({"a": set()}, complete={"a"})

    def test_non_complete_member_rejected(self):
        with pytest.raises(ValueError):
            DatabaseDomain(
                frozenset({"a", "x"}),
                frozenset({"a"}),
                {"a": frozenset({"a"}), "x": frozenset({"x"})},
            )

    def test_complete_must_be_objects(self):
        with pytest.raises(ValueError):
            DatabaseDomain(frozenset({"a"}), frozenset({"b"}), {"a": frozenset({"a"})})


class TestOrderingAndFairness:
    def test_leq_by_semantics_inclusion(self):
        dom = make_domain(
            FAIR, complete={"a", "b"}, iso_key=lambda o: "ax" if o in ("a", "x") else o
        )
        assert dom.leq("x", "a")  # [[a]] ⊆ [[x]]
        assert not dom.leq("a", "x")

    def test_fairness_of_standard_domain(self):
        dom = make_domain(
            FAIR, complete={"a", "b"}, iso_key=lambda o: "ax" if o in ("a", "x") else o
        )
        assert dom.is_fair()
        assert dom.fairness_conditions() == (True, True)

    def test_prop_3_2_condition1_violation(self):
        # c ∉ [[c]] breaks fairness
        sem = {"a": {"b"}, "b": {"b"}, "x": {"a", "b"}}
        dom = make_domain(sem, complete={"a", "b"})
        cond1, _ = dom.fairness_conditions()
        assert not cond1
        assert not dom.is_fair()

    def test_prop_3_2_condition2_violation(self):
        # c ∈ [[x]] but [[c]] ⊄ [[x]]
        sem = {"a": {"a", "b"}, "b": {"b"}, "x": {"a"}}
        dom = make_domain(sem, complete={"a", "b"})
        _, cond2 = dom.fairness_conditions()
        assert not cond2
        assert not dom.is_fair()

    def test_prop_3_2_equivalence_on_random_micro_domains(self):
        """Proposition 3.2: fair ⇔ (condition 1 ∧ condition 2), exhaustively."""
        complete = ("a", "b")
        subsets = [frozenset(s) for r in (1, 2) for s in itertools.combinations(complete, r)]
        checked = 0
        for sem_a in subsets:
            for sem_b in subsets:
                for sem_x in subsets:
                    dom = make_domain(
                        {"a": sem_a, "b": sem_b, "x": sem_x}, complete=complete
                    )
                    cond1, cond2 = dom.fairness_conditions()
                    assert dom.is_fair() == (cond1 and cond2)
                    checked += 1
        assert checked == 27


class TestSaturationAndQueries:
    def test_saturation(self):
        dom = make_domain(
            FAIR, complete={"a", "b"}, iso_key=lambda o: "ax" if o in ("a", "x") else o
        )
        assert dom.is_saturated()

    def test_non_saturated_domain(self):
        dom = make_domain(FAIR, complete={"a", "b"})  # identity iso: x ≉ a
        assert not dom.is_saturated()

    def test_genericity(self):
        dom = make_domain(
            FAIR, complete={"a", "b"}, iso_key=lambda o: "ax" if o in ("a", "x") else o
        )
        assert dom.is_generic(lambda o: o in ("a", "x"))
        assert not dom.is_generic(lambda o: o == "a")  # splits the a≈x class

    def test_certain_and_naive(self):
        dom = make_domain(FAIR, complete={"a", "b"})
        q = lambda o: o != "nothing"  # constantly true
        assert dom.certain(q, "x")
        assert dom.naive_works(q)

    def test_theorem_3_1_exhaustively(self):
        """Thm 3.1: on a saturated domain, naive works ⇔ weakly monotone,
        for every generic Boolean query (checked over all 2^3 queries)."""
        iso = lambda o: "ax" if o in ("a", "x") else o
        dom = make_domain(FAIR, complete={"a", "b"}, iso_key=iso)
        assert dom.is_saturated()
        for bits in itertools.product([False, True], repeat=3):
            table = dict(zip(("a", "b", "x"), bits))
            query = table.__getitem__
            if not dom.is_generic(query):
                continue
            assert dom.naive_works(query) == dom.weakly_monotone(query)

    def test_proposition_3_3_exhaustively(self):
        """Prop 3.3: fair + saturated ⇒ naive ⇔ monotone ⇔ weakly monotone."""
        iso = lambda o: "ax" if o in ("a", "x") else o
        dom = make_domain(FAIR, complete={"a", "b"}, iso_key=iso)
        assert dom.is_fair() and dom.is_saturated()
        for bits in itertools.product([False, True], repeat=3):
            table = dict(zip(("a", "b", "x"), bits))
            query = table.__getitem__
            if not dom.is_generic(query):
                continue
            naive = dom.naive_works(query)
            assert naive == dom.weakly_monotone(query) == dom.monotone(query)


class TestRepresentativeSets:
    """Section 9: a non-saturated domain with a saturated subdomain."""

    # objects: complete a, b; core-like object k (saturated); junk object
    # j with [[j]] = [[k]] but no isomorphic complete member.
    SEM = {"a": {"a"}, "b": {"b"}, "k": {"a"}, "j": {"a"}}

    def iso(self, o):
        return "ak" if o in ("a", "k") else o

    def domain(self):
        return make_domain(self.SEM, complete={"a", "b"}, iso_key=self.iso)

    def test_domain_not_saturated(self):
        dom = self.domain()
        assert not dom.is_saturated()  # j has no ≈-witness in [[j]]

    def test_representative_set_accepted(self):
        dom = self.domain()
        chi = {"a": "a", "b": "b", "k": "k", "j": "k"}
        assert dom.is_representative_set(frozenset({"a", "b", "k"}), chi)

    def test_representative_set_needs_complete(self):
        dom = self.domain()
        chi = {"a": "a", "b": "b", "k": "k", "j": "k"}
        assert not dom.is_representative_set(frozenset({"a", "k"}), chi)

    def test_representative_set_needs_equal_semantics(self):
        dom = self.domain()
        chi_bad = {"a": "a", "b": "b", "k": "k", "j": "b"}  # [[j]] ≠ [[b]]
        assert not dom.is_representative_set(frozenset({"a", "b", "k"}), chi_bad)

    def test_theorem_9_1_exhaustively(self):
        """Thm 9.1: naive works ⇔ weakly monotone ∧ Q(x) = Q(χ(x))."""
        dom = self.domain()
        chi = {"a": "a", "b": "b", "k": "k", "j": "k"}
        S = frozenset({"a", "b", "k"})
        assert dom.is_representative_set(S, chi)
        for bits in itertools.product([False, True], repeat=4):
            table = dict(zip(("a", "b", "k", "j"), bits))
            query = table.__getitem__
            if not dom.is_generic(query):
                continue
            lhs = dom.naive_works(query)
            rhs = dom.weakly_monotone(query) and all(
                query(x) == query(chi[x]) for x in dom.objects
            )
            assert lhs == rhs, f"Theorem 9.1 fails on {table}"

    def test_corollary_9_3_exhaustively(self):
        """Cor 9.3: over S itself, naive works ⇔ weakly monotone over S."""
        dom = self.domain()
        S = frozenset({"a", "b", "k"})
        for bits in itertools.product([False, True], repeat=4):
            table = dict(zip(("a", "b", "k", "j"), bits))
            query = table.__getitem__
            if not dom.is_generic(query):
                continue
            assert dom.naive_works(query, over=S) == dom.weakly_monotone(query, over=S)
