"""Unit tests for repro.logic.eval: active-domain FO evaluation."""

import pytest

from repro.data.instance import Instance
from repro.data.values import Null
from repro.logic.ast import Var
from repro.logic.builders import Rel, eq, exists, forall, implies, or_
from repro.logic.eval import answers, evaluate, holds, iter_answers

R, S, E = Rel("R"), Rel("S"), Rel("E")
X = Null("x")


class TestAtoms:
    def test_atom_membership(self):
        d = Instance({"R": [(1, 2)]})
        assert evaluate(R(1, 2), d)
        assert not evaluate(R(2, 1), d)

    def test_missing_relation_is_empty(self):
        d = Instance({"R": [(1, 2)]})
        assert not evaluate(S(1, 1), d)

    def test_naive_null_equality(self):
        d = Instance({"R": [(X, X)]})
        y = Null("y")
        assert evaluate(eq(X, X), d)
        assert not evaluate(eq(X, y), d)
        assert not evaluate(eq(X, 1), d)

    def test_unbound_variable_raises(self):
        d = Instance({"R": [(1, 2)]})
        with pytest.raises(ValueError):
            evaluate(R("v", 2), d)


class TestConnectives:
    def test_boolean_structure(self):
        d = Instance({"R": [(1, 2)]})
        assert evaluate(R(1, 2) & ~R(2, 1), d)
        assert evaluate(or_(R(9, 9), R(1, 2)), d)
        assert evaluate(implies(R(2, 1), R(9, 9)), d)  # false antecedent
        assert not evaluate(implies(R(1, 2), R(9, 9)), d)


class TestQuantifiers:
    def test_exists_over_active_domain(self):
        d = Instance({"R": [(1, 2)]})
        assert evaluate(exists("v", R(1, "v")), d)
        assert not evaluate(exists("v", R("v", "v")), d)

    def test_forall_over_active_domain(self):
        d = Instance({"E": [(1, 2), (2, 1)]})
        assert evaluate(forall("v", exists("w", E("v", "w"))), d)

    def test_forall_false_when_witness_missing(self):
        d = Instance({"E": [(1, 2)]})
        assert not evaluate(forall("v", exists("w", E("v", "w"))), d)

    def test_nulls_participate_in_quantification(self):
        d = Instance({"E": [(X, X)]})
        assert evaluate(forall("v", E("v", "v")), d)

    def test_empty_instance_quantifiers(self):
        d = Instance.empty()
        assert evaluate(forall("v", E("v", "v")), d)  # vacuous
        assert not evaluate(exists("v", eq("v", "v")), d)

    def test_multi_variable_block(self):
        d = Instance({"E": [(1, 2)]})
        assert evaluate(exists("a", "b", E("a", "b")), d)
        assert not evaluate(forall("a", "b", E("a", "b")), d)


class TestHolds:
    def test_rejects_free_variables(self):
        with pytest.raises(ValueError):
            holds(R("x", "x"), Instance({"R": [(1, 1)]}))

    def test_sentence_ok(self):
        assert holds(exists("x", R("x", "x")), Instance({"R": [(1, 1)]}))


class TestAnswers:
    def test_basic_answers(self):
        d = Instance({"R": [(1, 2), (2, 3)]})
        got = answers(R("a", "b"), d, (Var("a"), Var("b")))
        assert got == frozenset({(1, 2), (2, 3)})

    def test_answers_include_nulls(self):
        d = Instance({"R": [(1, X)]})
        got = answers(R("a", "b"), d, (Var("a"), Var("b")))
        assert (1, X) in got

    def test_column_order_respected(self):
        d = Instance({"R": [(1, 2)]})
        got = answers(R("a", "b"), d, (Var("b"), Var("a")))
        assert got == frozenset({(2, 1)})

    def test_uncovered_free_variable_raises(self):
        d = Instance({"R": [(1, 2)]})
        with pytest.raises(ValueError):
            answers(R("a", "b"), d, (Var("a"),))

    def test_join_query(self):
        d = Instance({"R": [(1, X)], "S": [(X, 4)]})
        phi = exists("z", R("a", "z") & S("z", "c"))
        got = answers(phi, d, (Var("a"), Var("c")))
        assert got == frozenset({(1, 4)})

    def test_iter_answers_streams(self):
        d = Instance({"R": [(1, 2), (3, 4)]})
        stream = iter_answers(R("a", "b"), d, (Var("a"), Var("b")))
        assert next(stream) in {(1, 2), (3, 4)}
