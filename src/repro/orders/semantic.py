"""Semantic orderings on naive databases (Section 6, Proposition 6.1).

``x ≼ y ⇔ [[y]] ⊆ [[x]]`` — "y is at least as informative as x".  For
the standard relational semantics these orderings are characterised by
the existence of database homomorphisms:

* ``D ≼_OWA D'``  — a homomorphism ``D → D'``;
* ``D ≼_CWA D'``  — a strong onto homomorphism (``h(D) = D'``);
* ``D ≼_WCWA D'`` — an onto homomorphism;
* ``D ⋐_CWA D'``  — a *set* of homomorphisms with ``⋃ h_i(D) = D'``
  (the powerset ordering, Theorem 7.1).

All homomorphisms here are database homomorphisms (identity on
constants); both arguments may be incomplete.
"""

from __future__ import annotations

from repro.data.instance import Instance
from repro.homs.search import has_homomorphism, iter_homomorphisms

__all__ = ["leq_owa", "leq_cwa", "leq_wcwa", "leq_pcwa", "ORDERINGS"]


def leq_owa(left: Instance, right: Instance) -> bool:
    """``left ≼_OWA right``: a database homomorphism ``left → right`` exists."""
    return has_homomorphism(left, right, fix_constants=True)


def leq_cwa(left: Instance, right: Instance) -> bool:
    """``left ≼_CWA right``: a strong onto database homomorphism exists."""
    return has_homomorphism(left, right, fix_constants=True, strong_onto=True)


def leq_wcwa(left: Instance, right: Instance) -> bool:
    """``left ≼_WCWA right``: an onto database homomorphism exists."""
    return has_homomorphism(left, right, fix_constants=True, onto=True)


def leq_pcwa(left: Instance, right: Instance) -> bool:
    """``left ⋐_CWA right``: homomorphisms ``h_1..h_n`` with ``⋃ h_i(left) = right``.

    Every candidate image is a subinstance of ``right``, so it suffices
    to union *all* homomorphisms ``left → right`` and test coverage
    (Theorem 7.1, first item).  Coverage is tracked as a set of facts —
    homomorphic images are always subinstances of ``right``, so the
    union covers ``right`` exactly when the fact count matches — which
    avoids materialising an :class:`Instance` per homomorphism.
    """
    goal = {(name, row) for name in right.relations for row in right.tuples(name)}
    covered: set = set()
    found_any = False
    for hom in iter_homomorphisms(left, right, fix_constants=True):
        found_any = True
        get = hom.get
        for name, row in left.facts():
            covered.add((name, tuple(get(v, v) for v in row)))
        if len(covered) == len(goal):
            return True
    return found_any and covered == goal


#: name → predicate, for parametrised tests and benches
ORDERINGS = {
    "owa": leq_owa,
    "cwa": leq_cwa,
    "wcwa": leq_wcwa,
    "pcwa": leq_pcwa,
}
