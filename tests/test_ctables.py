"""Tests for conditional tables: conditions, worlds, strong representation."""

import pytest

from repro.ctables import (
    CFact,
    CInstance,
    FALSE_C,
    TRUE_C,
    cand,
    ceq,
    cneq,
    cor,
    difference,
    join,
    project,
    rename,
    select_eq,
    union,
)
from repro.data.instance import Instance
from repro.data.values import Null
from repro.logic.parser import parse
from repro.logic.queries import Query

X, Y = Null("x"), Null("y")


class TestConditions:
    def test_constant_folding(self):
        assert ceq(1, 1) is TRUE_C
        assert ceq(1, 2) is FALSE_C
        assert cneq(1, 2) is TRUE_C
        assert cneq(1, 1) is FALSE_C

    def test_symbolic_equality(self):
        cond = ceq(X, 1)
        assert cond.satisfied({X: 1})
        assert not cond.satisfied({X: 2})
        assert cond.nulls() == {X}

    def test_connective_simplification(self):
        assert cand() is TRUE_C
        assert cor() is FALSE_C
        assert cand(TRUE_C, ceq(X, 1)) == ceq(X, 1)
        assert cand(FALSE_C, ceq(X, 1)) is FALSE_C
        assert cor(TRUE_C, ceq(X, 1)) is TRUE_C

    def test_nested_evaluation(self):
        cond = cand(ceq(X, 1), cor(ceq(Y, 2), cneq(Y, Y)))
        assert cond.satisfied({X: 1, Y: 2})
        assert not cond.satisfied({X: 1, Y: 3})

    def test_operators(self):
        cond = ceq(X, 1) & ceq(Y, 2)
        assert cond.satisfied({X: 1, Y: 2})
        assert (~ceq(X, 1)).satisfied({X: 5})
        assert (ceq(X, 1) | ceq(X, 2)).satisfied({X: 2})


class TestCInstance:
    def test_from_instance_all_true(self):
        naive = Instance({"R": [(1, X)]})
        ct = CInstance.from_instance(naive)
        assert all(f.condition is TRUE_C for f in ct.facts)
        assert ct.world({X: 5}) == Instance({"R": [(1, 5)]})

    def test_conditional_fact_absent_when_false(self):
        ct = CInstance((CFact("R", (1,), ceq(X, 1)),))
        assert ct.world({X: 1}) == Instance({"R": [(1,)]})
        assert ct.world({X: 2}) == Instance.empty()

    def test_global_condition_filters_valuations(self):
        ct = CInstance((CFact("R", (X,)),), global_condition=cneq(X, 1))
        assert ct.world({X: 1}) is None
        assert ct.world({X: 2}) == Instance({"R": [(2,)]})

    def test_worlds_enumeration(self):
        ct = CInstance((CFact("R", (X,)), CFact("S", (1,), ceq(X, 1))))
        worlds = set(ct.worlds([1, 2]))
        assert worlds == {
            Instance({"R": [(1,)], "S": [(1,)]}),
            Instance({"R": [(2,)]}),
        }

    def test_nulls_include_condition_nulls(self):
        ct = CInstance((CFact("R", (1,), ceq(Y, 2)),))
        assert ct.nulls() == {Y}

    def test_arity_check(self):
        with pytest.raises(ValueError):
            CInstance((CFact("R", (1,)), CFact("R", (1, 2))))

    def test_certain_answers_conditional(self):
        # R(1) is present iff x=1; R(2) unconditionally
        ct = CInstance((CFact("R", (1,), ceq(X, 1)), CFact("R", (2,)),))
        q = Query(parse("R(v)"), ("v",))
        assert ct.certain_answers(q) == frozenset({(2,)})

    def test_certain_answers_disjunctive_knowledge(self):
        # x is 1 or 2 (global condition): ∃v R(v) with R = {(x)} is certain
        ct = CInstance(
            (CFact("R", (X,)),),
            global_condition=cor(ceq(X, 1), ceq(X, 2)),
        )
        q = Query.boolean(parse("R(1) | R(2)"))
        assert ct.certain_answers(q) == frozenset({()})

    def test_unsatisfiable_global_raises(self):
        ct = CInstance((CFact("R", (1,)),), global_condition=FALSE_C)
        q = Query(parse("R(v)"), ("v",))
        with pytest.raises(ValueError):
            ct.certain_answers(q)


def rep(ct: CInstance, relation: str, pool) -> set:
    """The represented set of worlds, restricted to one relation."""
    return {world.restrict([relation]) for world in ct.worlds(pool)}


class TestStrongRepresentation:
    """rep(Q(T)) = {Q(E) : E ∈ rep(T)} for each operator, by enumeration."""

    POOL = [1, 2]

    def base(self) -> CInstance:
        return CInstance(
            (
                CFact("R", (1, X)),
                CFact("R", (X, 2), cneq(X, 2)),
                CFact("S", (X,)),
                CFact("S", (2,), ceq(X, 1)),
            )
        )

    def test_select(self):
        ct = self.base()
        out = select_eq(ct, "R", 0, 1, "Q")
        got = rep(out, "Q", self.POOL)
        want = set()
        for world in ct.worlds(self.POOL):
            kept = {row for row in world.tuples("R") if row[0] == 1}
            want.add(Instance({"Q": kept}) if kept else Instance.empty())
        assert got == want

    def test_project(self):
        ct = self.base()
        out = project(ct, "R", [1], "Q")
        got = rep(out, "Q", self.POOL)
        want = set()
        for world in ct.worlds(self.POOL):
            kept = {(row[1],) for row in world.tuples("R")}
            want.add(Instance({"Q": kept}) if kept else Instance.empty())
        assert got == want

    def test_join(self):
        ct = self.base()
        out = join(ct, "R", "S", [(1, 0)], "Q")
        got = rep(out, "Q", self.POOL)
        want = set()
        for world in ct.worlds(self.POOL):
            kept = {
                r + s
                for r in world.tuples("R")
                for s in world.tuples("S")
                if r[1] == s[0]
            }
            want.add(Instance({"Q": kept}) if kept else Instance.empty())
        assert got == want

    def test_union(self):
        ct = self.base()
        out = union(ct, "S", "S", "Q")
        got = rep(out, "Q", self.POOL)
        want = {
            Instance({"Q": world.tuples("S")}) if world.tuples("S") else Instance.empty()
            for world in ct.worlds(self.POOL)
        }
        assert got == want

    def test_rename(self):
        ct = self.base()
        out = rename(ct, "S", "Q")
        got = rep(out, "Q", self.POOL)
        want = {
            Instance({"Q": world.tuples("S")}) if world.tuples("S") else Instance.empty()
            for world in ct.worlds(self.POOL)
        }
        assert got == want

    def test_difference(self):
        # the construction that naive tables cannot express
        ct = CInstance(
            (
                CFact("A", (1,)),
                CFact("A", (2,)),
                CFact("B", (X,)),
            )
        )
        out = difference(ct, "A", "B", "Q")
        got = rep(out, "Q", self.POOL)
        want = set()
        for world in ct.worlds(self.POOL):
            kept = world.tuples("A") - world.tuples("B")
            want.add(Instance({"Q": kept}) if kept else Instance.empty())
        assert got == want

    def test_difference_certain_answers_not_in(self):
        """The NOT IN paradox done *right* via c-tables: certain answers
        to A − B with B = {⊥} are empty (the null may be any element),
        matching the brute-force oracle — unlike SQL's blanket ∅ which
        is accidental here but wrong in general."""
        ct = CInstance((CFact("A", (1,)), CFact("A", (2,)), CFact("B", (X,))))
        out = difference(ct, "A", "B", "Q")
        q = Query(parse("Q(v)"), ("v",))
        assert out.certain_answers(q) == frozenset()

    def test_difference_with_constrained_null(self):
        """With a global condition x ≠ 1, the difference has a certain
        answer — expressiveness naive tables lack."""
        ct = CInstance(
            (CFact("A", (1,)), CFact("A", (2,)), CFact("B", (X,))),
            global_condition=cneq(X, 1),
        )
        out = difference(ct, "A", "B", "Q")
        q = Query(parse("Q(v)"), ("v",))
        assert out.certain_answers(q) == frozenset({(1,)})
