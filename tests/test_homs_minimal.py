"""Unit tests for repro.homs.minimal: D-minimal valuations (Section 10)."""

from repro.data.generate import cores_graph_example, minimal_4ary_example
from repro.data.instance import Instance
from repro.data.values import Null
from repro.homs.core import core, is_core
from repro.homs.minimal import (
    is_d_minimal,
    iter_minimal_valuations,
    minimal_valuation_images,
    some_minimal_valuation,
)

X, Y = Null("x"), Null("y")


class TestIsDMinimal:
    def test_paper_example_non_minimal_valuation(self):
        # D = {(⊥,⊥),(⊥,⊥')}; v(⊥)=1, v(⊥')=2 is NOT minimal:
        # v'(⊥)=v'(⊥')=1 has a strictly smaller image.
        d = Instance({"T": [(X, X), (X, Y)]})
        assert not is_d_minimal(d, {X: 1, Y: 2})
        assert is_d_minimal(d, {X: 1, Y: 1})

    def test_injective_valuation_on_core_is_minimal(self):
        d = Instance({"R": [(X, Y)]})
        assert is_d_minimal(d, {X: 1, Y: 2})

    def test_4ary_counterexample(self):
        # both D and h(D) are cores, yet h is not D-minimal (Prop 10.1)
        d, h = minimal_4ary_example()
        assert is_core(d)
        assert is_core(d.apply(h))
        assert not is_d_minimal(d, h, mode="database")

    def test_graph_counterexample(self):
        # C4+C6 → C3+C2 strong onto but not minimal: G → C2 exists.
        g, h_graph, hom = cores_graph_example()
        assert not is_d_minimal(g, hom, mode="mapping")

    def test_minimal_image_is_core(self):
        # Prop 10.1: if h is D-minimal then h(D) is a core
        d = Instance({"R": [(X, 1), (Y, 1), (X, Y)]})
        for v in iter_minimal_valuations(d, [1, 2, 3]):
            assert is_core(d.apply(v))

    def test_minimal_image_equals_image_of_core(self):
        # Prop 10.1: h(D) = h(core(D)) for D-minimal h
        d = Instance({"D": [(X, X), (X, Y)]})
        c = core(d)
        for v in iter_minimal_valuations(d, [1, 2]):
            assert d.apply(v) == c.apply(v)

    def test_unknown_mode_raises(self):
        import pytest

        with pytest.raises(ValueError):
            is_d_minimal(Instance({"R": [(X,)]}), {X: 1}, mode="bogus")


class TestEnumeration:
    def test_minimal_valuations_of_collapsing_instance(self):
        # every minimal valuation of {(⊥,⊥),(⊥,⊥')} maps both nulls together
        d = Instance({"T": [(X, X), (X, Y)]})
        vals = list(iter_minimal_valuations(d, [1, 2]))
        assert vals, "some minimal valuation must exist"
        assert all(v[X] == v[Y] for v in vals)

    def test_minimal_images_shape(self):
        d = Instance({"T": [(X, X), (X, Y)]})
        images = minimal_valuation_images(d, [1, 2])
        assert images == {
            Instance({"T": [(1, 1)]}),
            Instance({"T": [(2, 2)]}),
        }

    def test_some_minimal_valuation(self):
        d = Instance({"R": [(X,)]})
        assert some_minimal_valuation(d, [1]) == {X: 1}
        assert some_minimal_valuation(d, []) is None

    def test_no_nulls_single_identity_valuation(self):
        d = Instance({"R": [(1, 2)]})
        vals = list(iter_minimal_valuations(d, [5]))
        assert vals == [{}]
