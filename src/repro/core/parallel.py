"""Parallel world sharding for the certain-answer oracle.

The CWA oracle intersects ``Q(v(D))`` over the canonical valuations of
the null slots (:mod:`repro.core.certain`).  The intersection is
associative and commutative, so the valuation space can be partitioned
into shards, each shard intersected independently, and the shard
results intersected at the end — with one powerful twist: **any** shard
whose running intersection becomes empty makes the global answer empty,
so an empty shard result cancels every other worker.

Sharding works on *canonical prefixes*: the restricted-growth
enumeration of ``certain._canonical_valuations`` is a tree whose level-d
nodes are the canonical prefixes of length d, and each worker expands a
set of disjoint subtrees.  The picklable
:class:`~repro.core.certain.WorldSpec` payload (compiled plan, row
templates, shared static relations) is shipped to each worker exactly
once via the pool initializer; the worker builds the static-relation
hash indexes once and reuses them across all its shards, mirroring the
per-instance index reuse of the serial path.

The pool start method prefers ``fork`` (cheap, shares the already-built
compiled-plan caches) and falls back to the platform default where fork
is unavailable.

Two dispatch modes coexist:

* **one-shot** (the default) — a fresh pool per call, the spec shipped
  once via the pool initializer, ``terminate()`` on early cancellation;
* **persistent** (:class:`OracleWorkerPool`) — one pool kept alive by a
  long-running session/server and reused across requests, so serving a
  stream of oracle queries does not re-fork per call.  Each run ships
  the spec alongside its chunks tagged with a run token; workers keep
  the static-index context of the token they last saw, so within one
  run the shared indexes are still built once per worker.  Cancellation
  stops consuming results instead of terminating (the pool must
  survive), letting in-flight chunks finish into the void.
"""

from __future__ import annotations

import itertools
import multiprocessing
import pickle
import threading
from time import perf_counter
from typing import Hashable, Sequence

from repro.core.certain import WorldSpec, _canonical_valuations

__all__ = ["shard_prefixes", "parallel_intersection", "OracleWorkerPool"]

#: target number of shards per worker — small enough to keep payload
#: dispatch cheap, large enough that an early-cancelling shard frees its
#: worker for useful work instead of leaving it on one huge subtree
SHARDS_PER_WORKER = 4


def _mp_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


def shard_prefixes(
    n_slots: int,
    base_choices: Sequence[Hashable],
    fresh_tail: Sequence[Hashable],
    target: int,
) -> list[tuple[Hashable, ...]]:
    """Disjoint canonical prefixes covering the whole valuation space.

    Deepens one level at a time until at least ``target`` prefixes exist
    (or the prefixes are full valuations).  Level d prefixes are exactly
    the canonical valuations of d slots, so expanding each prefix with
    the restricted-growth generator partitions the space.
    """
    depth = 0
    prefixes: list[tuple[Hashable, ...]] = [()]
    while len(prefixes) < target and depth < n_slots:
        depth += 1
        prefixes = list(_canonical_valuations(depth, base_choices, fresh_tail))
    return prefixes


_WORKER_SPEC: WorldSpec | None = None
_WORKER_CTX = None


def _init_worker(spec: WorldSpec) -> None:
    """Receive the payload once per worker; pre-build the shared indexes."""
    global _WORKER_SPEC, _WORKER_CTX
    _WORKER_SPEC = spec
    _WORKER_CTX = spec.base_context()


def _expand_chunk(spec: WorldSpec, base_ctx, chunk):
    """Intersect one chunk of canonical-prefix subtrees.

    Starts from the seed intersection shipped in the spec, so a world
    disagreeing with the seed worlds empties the running intersection
    (and thereby cancels the whole computation) as early as possible.
    """
    chunk_id, prefixes = chunk
    start = perf_counter()
    result, worlds, stopped = spec.run(
        (
            vals
            for prefix in prefixes
            for vals in _canonical_valuations(
                spec.n_slots, spec.base_choices, spec.fresh_tail, prefix=prefix
            )
        ),
        spec.seed,
        base_ctx,
        seen=set(spec.seed_keys),  # seed worlds were evaluated up front
    )
    return chunk_id, result, worlds, perf_counter() - start, stopped


def _run_chunk(chunk: tuple[int, list[tuple[Hashable, ...]]]):
    """One-shot-pool entry point: the spec arrived via the initializer."""
    return _expand_chunk(_WORKER_SPEC, _WORKER_CTX, chunk)


#: persistent-pool worker state: (run token, spec, static-index context)
#: of the run this worker last served — lets one worker deserialize the
#: spec and build its shared indexes once per run, not once per chunk,
#: without any per-run initializer
_TOKEN_CTX: tuple[int, WorldSpec, object] | None = None


def _run_chunk_tagged(payload):
    """Persistent-pool entry point: ``(token, spec bytes, chunk)`` per task.

    The spec travels as pre-pickled bytes (serialized once in the
    parent); a worker unpickles it only on the first chunk of a token
    and reuses the cached spec + static-index context for the rest.
    """
    global _TOKEN_CTX
    token, spec_bytes, chunk = payload
    if _TOKEN_CTX is None or _TOKEN_CTX[0] != token:
        spec = pickle.loads(spec_bytes)
        _TOKEN_CTX = (token, spec, spec.base_context())
    _, spec, base_ctx = _TOKEN_CTX
    return _expand_chunk(spec, base_ctx, chunk)


class OracleWorkerPool:
    """A process pool the oracle reuses across requests.

    One-shot parallel runs fork a fresh pool and ship the
    :class:`WorldSpec` through the initializer — fine for a single big
    query, wasteful for a server answering a stream of them.  A
    ``Database``/:mod:`repro.server` session keeps one of these alive
    instead: requests submit their chunks (each tagged with a per-run
    token so workers can keep their static-index context) to the same
    processes.  Thread-safe — ``multiprocessing.Pool`` serialises
    concurrent submissions internally.
    """

    def __init__(self, processes: int):
        self.processes = max(1, int(processes))
        self._pool = _mp_context().Pool(processes=self.processes)
        self._tokens = itertools.count(1)
        self._token_lock = threading.Lock()
        self._closed = False

    def next_token(self) -> int:
        with self._token_lock:
            return next(self._tokens)

    def imap_chunks(self, token: int, spec: WorldSpec, chunks):
        """Unordered shard results for one run (see ``_run_chunk_tagged``).

        The spec is pickled exactly once here; every chunk carries the
        same bytes (a pipe memcpy), and each worker unpickles them once
        per token — so neither side pays per-chunk (de)serialization of
        the compiled-plan payload.
        """
        spec_bytes = pickle.dumps(spec, protocol=pickle.HIGHEST_PROTOCOL)
        return self._pool.imap_unordered(
            _run_chunk_tagged, [(token, spec_bytes, chunk) for chunk in chunks]
        )

    def close(self) -> None:
        """Shut the pool down (idempotent), letting in-flight chunks finish.

        Graceful on purpose: a concurrent evaluation may still be
        consuming ``imap_chunks`` results, and ``terminate()`` would
        strand its iterator — ``close()+join()`` drains instead (the
        common idle case returns immediately).
        """
        if not self._closed:
            self._closed = True
            self._pool.close()
            self._pool.join()

    def __enter__(self) -> "OracleWorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "live"
        return f"OracleWorkerPool({self.processes} processes, {state})"


def parallel_intersection(
    spec: WorldSpec,
    workers: int,
    stats_out: dict | None = None,
    worker_pool: OracleWorkerPool | None = None,
) -> frozenset | None:
    """``seed ∩ ⋂ Q(v(D))`` over all canonical valuations, sharded.

    Shard results stream back unordered; the first empty one cancels the
    run (sound because an empty shard intersection already determines
    the global answer).  With a fresh per-call pool, cancellation
    ``terminate()``\\ s the workers; with a persistent ``worker_pool``
    the pool must outlive the run, so cancellation just stops consuming
    and lets in-flight chunks finish unobserved.
    """
    if worker_pool is not None:
        workers = min(workers, worker_pool.processes)
    prefixes = shard_prefixes(
        spec.n_slots, spec.base_choices, spec.fresh_tail, workers * SHARDS_PER_WORKER
    )
    n_chunks = min(len(prefixes), workers * SHARDS_PER_WORKER)
    chunks: list[tuple[int, list]] = [(i, []) for i in range(n_chunks)]
    for i, prefix in enumerate(prefixes):
        chunks[i % n_chunks][1].append(prefix)

    result = spec.seed
    worlds = 0
    cancelled = False
    degraded = False
    per_shard: list[dict] = []

    def consume(results, on_cancel) -> None:
        nonlocal result, worlds, cancelled
        for chunk_id, rows, shard_worlds, seconds, stopped in results:
            worlds += shard_worlds
            per_shard.append(
                {
                    "shard": chunk_id,
                    "worlds": shard_worlds,
                    "seconds": round(seconds, 6),
                    "empty": bool(stopped),
                }
            )
            if rows is not None:
                result = rows if result is None else result & rows
            if result is not None and not result:
                # running-intersection exchange: this shard's emptiness
                # decides the global answer — cancel every other worker
                cancelled = True
                on_cancel()
                break

    if worker_pool is not None:
        try:
            token = worker_pool.next_token()
            results = worker_pool.imap_chunks(token, spec, chunks)
        except ValueError:
            # the pool was closed under us (workers reconfigured mid-run):
            # degrade to the serial sweep rather than failing the query
            worker_pool = None
            degraded = True
            result, serial_worlds, _ = spec.run(
                (
                    vals
                    for chunk_id, prefixes in chunks
                    for prefix in prefixes
                    for vals in _canonical_valuations(
                        spec.n_slots, spec.base_choices, spec.fresh_tail, prefix=prefix
                    )
                ),
                spec.seed,
                seen=set(spec.seed_keys),
            )
            worlds += serial_worlds
        else:
            consume(results, lambda: None)
    else:
        ctx = _mp_context()
        with ctx.Pool(
            processes=min(workers, n_chunks),
            initializer=_init_worker,
            initargs=(spec,),
        ) as pool:
            consume(pool.imap_unordered(_run_chunk, chunks), pool.terminate)

    if stats_out is not None:
        stats_out.update(
            mode="serial-fallback" if degraded else "parallel",
            workers=0 if degraded else min(workers, n_chunks),
            shards=n_chunks,
            worlds=worlds + stats_out.get("seed_worlds", 0),
            cancelled=cancelled,
            per_shard=sorted(per_shard, key=lambda s: s["shard"]),
            persistent_pool=worker_pool is not None,
        )
    return result
