"""The JSON-lines serving layer: QueryService ops, the batch gate, the
TCP server, and the persistent oracle worker pool."""

import json
import socket
import threading
import time

import pytest

from repro.data.values import Null
from repro.server import QueryService, serve
from repro.session import Database

X = Null("x")

JOIN = "exists z (R(x, z) & S(z, y))"


@pytest.fixture
def service():
    db = Database({"R": [(1, X)], "S": [(X, 4)]}, semantics="cwa")
    return QueryService(db)


class TestQueryServiceOps:
    def test_ping(self, service):
        assert service.handle({"op": "ping", "id": 7}) == {
            "ok": True, "pong": True, "id": 7,
            "proto": 2, "features": ["pipelining"],
        }

    def test_query_round_trip(self, service):
        response = service.handle(
            {"op": "query", "query": JOIN, "vars": ["x", "y"]}
        )
        assert response["ok"] and response["answers"] == [[1, 4]]
        assert response["exact"] and response["method"] == "columnar"

    def test_null_cells_encoded_on_the_wire(self, service):
        service.handle(
            {"op": "insert", "relation": "R", "rows": [["?y", "??lit"]]}
        )
        dump = service.handle({"op": "dump"})["instance"]
        assert ["?y", "??lit"] in dump["R"]
        assert service.db.instance.tuples("R") >= {(Null("y"), "?lit")}

    def test_insert_delete_delta(self, service):
        assert service.handle(
            {"op": "insert", "relation": "T", "rows": [[1], [2]]}
        )["changed"] == 2
        assert service.handle(
            {"op": "delete", "relation": "T", "rows": [[2], [9]]}
        )["changed"] == 1
        response = service.handle(
            {"op": "delta", "adds": {"T": [[5]]}, "removes": {"T": [[1]]}}
        )
        assert response["ok"] and response["changed"] == 2
        assert service.db.instance.tuples("T") == {(5,)}

    def test_mutation_preserves_unrelated_cache(self, service):
        service.handle({"op": "query", "query": JOIN, "vars": ["x", "y"]})
        service.handle({"op": "insert", "relation": "T", "rows": [[1]]})
        again = service.handle({"op": "query", "query": JOIN, "vars": ["x", "y"]})
        assert again["cache"] == "hit"

    def test_semantics_override(self, service):
        response = service.handle(
            {"op": "query", "query": "forall u . exists v . R(u, v)",
             "semantics": "owa"}
        )
        assert response["ok"] and response["method"] == "enumeration"

    def test_explain(self, service):
        response = service.handle({"op": "explain", "query": JOIN})
        assert response["ok"] and response["plan"]["backend"] == "columnar"

    def test_batch_op(self, service):
        response = service.handle(
            {"op": "batch", "queries": [
                {"query": JOIN, "vars": ["x", "y"]},
                {"query": "exists u, v (S(u, v))"},
            ]}
        )
        assert response["ok"] and len(response["results"]) == 2
        assert response["results"][0]["answers"] == [[1, 4]]
        assert all(r["batched"] for r in response["results"])

    def test_stats(self, service):
        service.handle({"op": "query", "query": JOIN})
        service.handle({"op": "insert", "relation": "T", "rows": [[1]]})
        stats = service.handle({"op": "stats"})
        assert stats["requests"]["queries"] == 1
        assert stats["requests"]["mutations"] == 1
        assert stats["semantics"] == "cwa"
        assert stats["generation"] == 1

    @pytest.mark.parametrize(
        "request_",
        [
            {"op": "nope"},
            {},
            {"op": "query"},
            {"op": "query", "query": "exists z ("},
            {"op": "query", "query": "R(x)", "semantics": "bogus"},
            {"op": "insert", "relation": "R"},
            {"op": "insert", "rows": [[1]]},
            {"op": "delta", "adds": [["R", 1]]},
            {"op": "query", "query": "R(x, y)", "vars": "xy"},
        ],
    )
    def test_bad_requests_become_error_responses(self, service, request_):
        response = service.handle(request_)
        assert response["ok"] is False and response["error"]

    def test_bad_json_line(self, service):
        response = json.loads(service.handle_line("{nope"))
        assert response["ok"] is False and "bad JSON" in response["error"]

    def test_error_counter(self, service):
        service.handle({"op": "nope"})
        assert service.handle({"op": "stats"})["requests"]["errors"] == 1


class TestBatchGate:
    def test_single_request_is_batch_of_one(self, service):
        response = service.handle({"op": "query", "query": JOIN})
        assert response["ok"] and response["batched"] is False

    def test_concurrent_requests_coalesce(self, monkeypatch):
        db = Database({"R": [(1, 2), (2, 3)]})
        service = QueryService(db)
        real = db.evaluate_many
        calls = []
        first_entered = threading.Event()
        release = threading.Event()

        def slow(sources, *, mode="auto"):
            sources = list(sources)
            calls.append(len(sources))
            if len(calls) == 1:
                first_entered.set()
                assert release.wait(5)
            return real(sources, mode=mode)

        monkeypatch.setattr(db, "evaluate_many", slow)
        responses = {}

        def client(i, text):
            responses[i] = service.handle({"op": "query", "query": text})

        leader = threading.Thread(target=client, args=(0, "exists x (R(x, 2))"))
        leader.start()
        assert first_entered.wait(5)
        followers = [
            threading.Thread(target=client, args=(i, f"exists x (R(x, {i}))"))
            for i in (1, 2)
        ]
        for t in followers:
            t.start()
        # wait until both followers are queued behind the stalled leader
        deadline = time.time() + 5
        while time.time() < deadline:
            with service._batch._cond:
                if len(service._batch._pending.get("auto", [])) == 2:
                    break
            time.sleep(0.002)
        release.set()
        leader.join(5)
        for t in followers:
            t.join(5)
        assert calls == [1, 2]  # leader alone, then the two followers together
        assert responses[0]["batched"] is False
        assert responses[1]["batched"] and responses[2]["batched"]
        assert all(responses[i]["ok"] for i in responses)

    def test_bad_batchmate_does_not_poison_others(self, monkeypatch):
        db = Database({"R": [(1, X)]}, semantics="cwa")
        service = QueryService(db)

        def explode(sources, *, mode="auto"):
            raise ValueError("batch went sideways")

        monkeypatch.setattr(db, "evaluate_many", explode)
        response = service.handle({"op": "query", "query": "exists z (R(1, z))"})
        assert response["ok"] and response["holds"]  # individual fallback

    def test_batching_can_be_disabled(self):
        db = Database({"R": [(1, 2)]})
        service = QueryService(db, batch=False)
        response = service.handle({"op": "query", "query": "exists x (R(x, 2))"})
        assert response["ok"] and response["batched"] is False


class TestTCPServer:
    def _rpc(self, sock_file_pair, obj):
        reader, writer = sock_file_pair
        writer.write(json.dumps(obj) + "\n")
        writer.flush()
        return json.loads(reader.readline())

    def test_end_to_end_over_sockets(self):
        db = Database({"R": [(1, X)], "S": [(X, 4)]}, semantics="cwa")
        with serve(db) as server:
            with socket.create_connection(server.address, timeout=5) as sock:
                files = (sock.makefile("r"), sock.makefile("w"))
                assert self._rpc(files, {"op": "ping"})["pong"]
                got = self._rpc(
                    files, {"op": "query", "query": JOIN, "vars": ["x", "y"]}
                )
                assert got["answers"] == [[1, 4]]
                assert self._rpc(
                    files, {"op": "insert", "relation": "T", "rows": [[1]]}
                )["changed"] == 1
                assert self._rpc(
                    files, {"op": "query", "query": JOIN, "vars": ["x", "y"]}
                )["cache"] == "hit"
        db.close()

    def test_many_concurrent_clients(self):
        db = Database({"R": [(i, i + 1) for i in range(6)]})
        with serve(db, max_threads=4) as server:
            errors = []

            def client(i):
                try:
                    with socket.create_connection(server.address, timeout=5) as sock:
                        files = (sock.makefile("r"), sock.makefile("w"))
                        for k in range(5):
                            got = self._rpc(
                                files,
                                {"op": "query", "query": f"exists x (R(x, {i}))"},
                            )
                            assert got["ok"], got
                except Exception as err:  # noqa: BLE001 - collected for the assert
                    errors.append(err)

            threads = [threading.Thread(target=client, args=(i,)) for i in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(10)
            assert not errors
            stats = db.cache_stats
            assert stats["hits"] >= 8 * 5 - 8  # every repeat is a hit
        db.close()

    def test_blank_lines_ignored_and_id_echoed(self):
        db = Database({"R": [(1, 2)]})
        with serve(db) as server:
            with socket.create_connection(server.address, timeout=5) as sock:
                reader, writer = sock.makefile("r"), sock.makefile("w")
                writer.write("\n\n")
                writer.write(json.dumps({"op": "ping", "id": "abc"}) + "\n")
                writer.flush()
                assert json.loads(reader.readline())["id"] == "abc"
        db.close()


class TestPersistentWorkerPool:
    def test_parallel_results_match_serial_through_pool(self):
        import random

        from repro.core import certain_answers
        from repro.core.parallel import OracleWorkerPool
        from repro.data.generate import random_instance
        from repro.data.schema import Schema
        from repro.logic.parser import parse
        from repro.logic.queries import Query
        from repro.semantics import get_semantics

        rng = random.Random(1084)
        instance = random_instance(
            Schema({"R": 2, "S": 1}), rng, n_facts=10, constants=(1, 2, 3, 4),
            n_nulls=5, null_probability=0.7,
        )
        query = Query(parse("exists z (R(x, z) & R(z, y))"), ("x", "y"))
        sem = get_semantics("cwa")
        want = certain_answers(query, instance, sem)
        with OracleWorkerPool(2) as pool:
            for _ in range(2):  # two requests share the same processes
                stats: dict = {}
                got = certain_answers(
                    query, instance, sem, workers=2, stats_out=stats,
                    worker_pool=pool,
                )
                assert got == want
                if stats.get("mode") == "parallel":
                    assert stats["persistent_pool"] is True

    def test_closed_pool_degrades_to_serial(self):
        from repro.core import certain_answers
        from repro.core.parallel import OracleWorkerPool
        from repro.data.instance import Instance
        from repro.logic.parser import parse
        from repro.logic.queries import Query
        from repro.semantics import get_semantics

        nulls = [Null(f"n{i}") for i in range(5)]
        inst = Instance({"R": list(zip(nulls, nulls[1:])) + [(1, 2)]})
        query = Query.boolean(parse("exists u, v (R(u, v))"))
        pool = OracleWorkerPool(2)
        pool.close()  # reconfigured under a hypothetical in-flight run
        stats: dict = {}
        got = certain_answers(
            query, inst, get_semantics("cwa"), workers=2,
            stats_out=stats, worker_pool=pool, limit=5_000_000,
        )
        assert got == frozenset([()])
        assert stats["mode"] == "serial-fallback" and stats["workers"] == 0

    def test_database_reuses_one_pool_across_requests(self):
        db = Database({"R": [(1, X)]}, semantics="cwa", workers=2)
        try:
            pool = db.ensure_worker_pool()
            assert db.ensure_worker_pool() is pool
        finally:
            db.close()
        assert db.ensure_worker_pool() is not pool  # recreated after close
        db.close()

    def test_workers_change_recreates_pool(self):
        db = Database({"R": [(1, X)]}, semantics="cwa", workers=2)
        pool = db.ensure_worker_pool()
        db.workers = 3
        new = db.ensure_worker_pool()
        assert new is not pool and new.processes == 3
        db.close()
