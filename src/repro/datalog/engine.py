"""Bottom-up datalog evaluation over naive databases.

Semi-naive fixpoint computation with nulls treated as ordinary values —
i.e., *naive evaluation* in the paper's sense, for datalog.  Because
datalog programs are monotone and generic, naive evaluation computes
certain answers under both OWA and CWA (the observation of Section 12,
validated in the tests against the brute-force oracle).

Rule bodies are matched **set-at-a-time**: each body (with the delta
atom of semi-naive evaluation renamed to a shadow relation) is compiled
once into the hash-join plan of :mod:`repro.logic.compile` and executed
against a per-round :class:`~repro.data.indexes.TableContext`, so every
rule of the round shares the hash indexes it probes.  The
tuple-at-a-time matcher (:func:`_match_atom` / :func:`_apply_rule_interp`)
is retained as the differential baseline; it, too, probes the
per-relation hash index on the positions its binding determines instead
of scanning every tuple.  Atoms whose declared arity disagrees with the
stored relation match nothing in either engine.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Hashable, Iterator

from repro.data.indexes import TableContext
from repro.data.instance import Instance
from repro.data.values import Null
from repro.datalog.program import Atom, Program, Rule
from repro.logic.ast import And, Exists, RelAtom, Var
from repro.logic.compile import CompiledQuery, compile_formula

__all__ = ["evaluate_program", "datalog_naive_answers", "datalog_certain_answers"]

#: shadow-relation prefix for the semi-naive delta copy of a relation
#: (relation names are arbitrary, so pick one no sane schema uses)
_DELTA = "Δ∂·"


def _match_atom(
    atom: Atom,
    facts: frozenset[tuple],
    binding: dict[Var, Hashable],
    ctx: TableContext | None = None,
    name: str | None = None,
) -> Iterator[dict[Var, Hashable]]:
    """Extensions of ``binding`` matching ``atom`` against ``facts``.

    When a context is supplied, the candidate rows are narrowed by
    probing its hash index on the positions the binding already
    determines (constants and bound variables) instead of scanning the
    whole relation.
    """
    if ctx is not None:
        stored = ctx.rows(name or atom.name)
        # probe only when the stored arity matches the atom's — an index
        # keyed on positions a shorter row lacks cannot even be built
        if stored and len(next(iter(stored))) == len(atom.terms):
            bound_positions: list[int] = []
            bound_key: list[Hashable] = []
            for i, term in enumerate(atom.terms):
                if isinstance(term, Var):
                    if term in binding:
                        bound_positions.append(i)
                        bound_key.append(binding[term])
                else:
                    bound_positions.append(i)
                    bound_key.append(term)
            if bound_positions:
                facts = ctx.index(name or atom.name, tuple(bound_positions)).get(
                    tuple(bound_key), ()
                )
    for row in facts:
        if len(row) != len(atom.terms):
            continue
        extension: dict[Var, Hashable] = {}
        ok = True
        for term, value in zip(atom.terms, row):
            if isinstance(term, Var):
                bound = binding.get(term, extension.get(term))
                if bound is None:
                    extension[term] = value
                elif bound != value:
                    ok = False
                    break
            elif term != value:
                ok = False
                break
        if ok:
            yield {**binding, **extension}


@lru_cache(maxsize=4096)
def _rule_plan(
    rule: Rule, delta_position: int
) -> tuple[CompiledQuery, tuple[tuple[bool, object], ...]]:
    """``(plan, head spec)`` for one rule body as a compiled join.

    ``delta_position`` names the body atom redirected to the shadow
    delta relation (``-1`` = none; plain naive evaluation).  The head
    spec rebuilds the head row from an answer tuple: ``(True, i)`` takes
    answer column ``i``, ``(False, c)`` the constant ``c``.
    """
    atoms = []
    for i, atom in enumerate(rule.body):
        name = _DELTA + atom.name if i == delta_position else atom.name
        atoms.append(RelAtom(name, atom.terms))
    head_vars: list[Var] = []
    for term in rule.head.terms:
        if isinstance(term, Var) and term not in head_vars:
            head_vars.append(term)
    body = atoms[0] if len(atoms) == 1 else And(tuple(atoms))
    bound = frozenset(v for atom in rule.body for v in atom.variables())
    inner = tuple(sorted(bound - set(head_vars), key=lambda v: v.name))
    if inner:
        body = Exists(inner, body)
    plan = compile_formula(body, tuple(head_vars))
    head_spec = tuple(
        (True, head_vars.index(term)) if isinstance(term, Var) else (False, term)
        for term in rule.head.terms
    )
    return plan, head_spec


def _round_context(
    total: Instance,
    delta: Instance | None,
    base: TableContext | None = None,
    base_names: frozenset[str] = frozenset(),
) -> TableContext:
    """One execution context per fixpoint round, shared by every rule.

    Holds the full ``total`` relations plus shadow ``Δ`` copies of the
    delta, so all (rule, delta-position) plans of the round probe the
    same lazily built hash indexes.  ``base`` layers a persistent
    context underneath: relations in ``base_names`` (EDB relations no
    rule ever derives into, identical in every round) are served — rows
    and hash indexes — by the base, so their indexes are built once per
    fixpoint instead of once per round.
    """
    rels: dict[str, frozenset[tuple]] = {
        name: total.tuples(name)
        for name in total.relations
        if name not in base_names
    }
    if delta is not None:
        for name in delta.relations:
            rels[_DELTA + name] = delta.tuples(name)
    return TableContext(rels, adom=total.adom(), base=base)


def _apply_rule_interp(
    rule: Rule,
    total: Instance,
    delta: Instance | None,
    ctx: TableContext | None = None,
) -> set[tuple[str, tuple]]:
    """Tuple-at-a-time fallback matcher (index-probing, but row-by-row)."""
    derived: set[tuple[str, tuple]] = set()
    positions = range(len(rule.body)) if delta is not None else [None]
    for delta_position in positions:
        bindings: list[dict[Var, Hashable]] = [{}]
        dead = False
        for index, atom in enumerate(rule.body):
            is_delta = delta is not None and index == delta_position
            source = delta.tuples(atom.name) if is_delta else total.tuples(atom.name)
            name = (_DELTA + atom.name) if is_delta else atom.name
            next_bindings: list[dict[Var, Hashable]] = []
            for binding in bindings:
                next_bindings.extend(_match_atom(atom, source, binding, ctx, name))
            bindings = next_bindings
            if not bindings:
                dead = True
                break
        if dead:
            continue
        for binding in bindings:
            row = tuple(
                binding[t] if isinstance(t, Var) else t for t in rule.head.terms
            )
            derived.add((rule.head.name, row))
    return derived


def _apply_rule(
    rule: Rule,
    total: Instance,
    delta: Instance | None,
    ctx: TableContext | None = None,
) -> set[tuple[str, tuple]]:
    """Join the rule body against ``total`` via the compiled join plan.

    Semi-naive mode: when ``delta`` is given, at least one body atom
    must match a delta fact (classic differential evaluation); joins
    still read the full ``total`` for the remaining atoms.  ``ctx`` lets
    the fixpoint driver share one per-round context (and its hash
    indexes) across all rules; omitted, a private one is built.
    """
    if ctx is None:
        ctx = _round_context(total, delta)
    derived: set[tuple[str, tuple]] = set()
    positions = range(len(rule.body)) if delta is not None else [-1]
    head_name = rule.head.name
    for delta_position in positions:
        plan, head_spec = _rule_plan(rule, delta_position)
        for answer in plan.answers(ctx):
            derived.add(
                (
                    head_name,
                    tuple(
                        answer[payload] if is_var else payload
                        for is_var, payload in head_spec
                    ),
                )
            )
    return derived


def evaluate_program(program: Program, edb: Instance, semi_naive: bool = True) -> Instance:
    """The least fixpoint: EDB plus all derivable IDB facts.

    Nulls participate exactly like constants (naive equality), so this
    is stage one of naive evaluation for datalog queries.

    ``semi_naive=False`` switches to full re-derivation per round (the
    textbook naive fixpoint) — same result, used as an ablation baseline
    in ``benchmarks/bench_ablation.py``.
    """
    total = edb
    delta = edb
    # relations no rule head derives into never change across rounds:
    # pin them (and their lazily built hash indexes) in a base context
    # layered under every round's context
    static_names = frozenset(edb.relations) - program.idb
    static_ctx = (
        TableContext({name: edb.tuples(name) for name in static_names})
        if static_names
        else None
    )
    while True:
        ctx = _round_context(
            total, delta if semi_naive else None, static_ctx, static_names
        )
        new_facts: set[tuple[str, tuple]] = set()
        for rule in program.rules:
            derived = _apply_rule(rule, total, delta if semi_naive else None, ctx)
            for name, row in derived:
                if row not in total.tuples(name):
                    new_facts.add((name, row))
        if not new_facts:
            return total
        delta = Instance.from_facts(new_facts)
        total = total.union(delta)


def datalog_naive_answers(
    program: Program, edb: Instance, predicate: str
) -> frozenset[tuple[Hashable, ...]]:
    """Naive evaluation of a datalog query: fixpoint, project, drop nulls."""
    fixpoint = evaluate_program(program, edb)
    return frozenset(
        row
        for row in fixpoint.tuples(predicate)
        if not any(isinstance(v, Null) for v in row)
    )


def datalog_certain_answers(
    program: Program,
    edb: Instance,
    predicate: str,
    semantics,
    pool=None,
    extra_facts: int | None = None,
    limit: int = 500_000,
) -> frozenset[tuple[Hashable, ...]]:
    """Brute-force certain answers: intersect over ``[[edb]]``.

    The oracle for validating that naive datalog evaluation computes
    certain answers (it must, by monotonicity + genericity).
    """
    from repro.core.certain import default_pool

    if pool is None:
        pool = default_pool(edb)
    result: frozenset[tuple[Hashable, ...]] | None = None
    schema = edb.schema()
    for complete in semantics.expand(
        edb, list(pool), schema=schema, extra_facts=extra_facts, limit=limit
    ):
        rows = frozenset(evaluate_program(program, complete).tuples(predicate))
        result = rows if result is None else result & rows
        if not result:
            break
    if result is None:
        raise RuntimeError("[[edb]] came out empty over the pool")
    return result
