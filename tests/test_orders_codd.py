"""Tests for Codd-database orderings (Section 6 and Theorem 7.1's last item)."""

import pytest

from repro.data.instance import Instance
from repro.data.values import Null
from repro.orders.codd import cwa_codd_leq, has_refinement_matching, hoare_leq, plotkin_leq
from repro.orders.semantic import leq_cwa, leq_owa, leq_pcwa

A, B, C = Null("a"), Null("b"), Null("c")


class TestHoare:
    def test_refinement(self):
        d = Instance({"R": [(1, A)]})
        e = Instance({"R": [(1, 2), (9, 9)]})
        assert hoare_leq(d, e)

    def test_missing_refinement(self):
        d = Instance({"R": [(1, A)]})
        e = Instance({"R": [(2, 2)]})
        assert not hoare_leq(d, e)

    def test_rejects_naive_databases(self):
        x = Null("x")
        with pytest.raises(ValueError):
            hoare_leq(Instance({"R": [(x, x)]}), Instance({"R": [(1, 1)]}))

    def test_relation_only_on_one_side(self):
        d = Instance({"R": [(1,)], "S": [(2,)]})
        e = Instance({"R": [(1,)]})
        assert not hoare_leq(d, e)
        assert hoare_leq(e, d)


class TestPlotkin:
    def test_both_directions_needed(self):
        d = Instance({"R": [(1, A)]})
        e = Instance({"R": [(1, 2), (9, 9)]})
        assert hoare_leq(d, e)
        assert not plotkin_leq(d, e)  # (9,9) refines nothing in d

    def test_plotkin_holds(self):
        d = Instance({"R": [(1, A)]})
        e = Instance({"R": [(1, 2), (1, 3)]})
        assert plotkin_leq(d, e)


class TestMatching:
    def test_matching_needs_enough_sources(self):
        d = Instance({"R": [(1, A)]})
        e = Instance({"R": [(1, 2), (1, 3)]})
        # two target tuples refine the single source tuple: no perfect matching
        assert not has_refinement_matching(d, e)

    def test_matching_exists(self):
        d = Instance({"R": [(1, A), (1, B)]})
        e = Instance({"R": [(1, 2), (1, 3)]})
        assert has_refinement_matching(d, e)

    def test_matching_distinctness(self):
        # both target tuples only refine the same source tuple
        d = Instance({"R": [(1, A), (2, B)]})
        e = Instance({"R": [(1, 5), (1, 6)]})
        assert not has_refinement_matching(d, e)


class TestLibkin2011Characterisations:
    """Section 6: over Codd databases, ≼_OWA = ⊑^H and ≼_CWA = ⊑^P + matching."""

    CODD_SAMPLES = [
        Instance({"R": [(1, A)]}),
        Instance({"R": [(1, B), (2, C)]}),
        Instance({"R": [(1, 2)]}),
        Instance({"R": [(1, 2), (1, 3)]}),
        Instance({"R": [(1, 2), (2, 1)]}),
        Instance({"R": [(Null("p"), Null("q"))]}),
    ]

    def test_owa_equals_hoare(self):
        for left in self.CODD_SAMPLES:
            for right in self.CODD_SAMPLES:
                assert leq_owa(left, right) == hoare_leq(left, right), (left, right)

    def test_cwa_equals_plotkin_plus_matching(self):
        for left in self.CODD_SAMPLES:
            for right in self.CODD_SAMPLES:
                expected = plotkin_leq(left, right) and has_refinement_matching(left, right)
                assert leq_cwa(left, right) == expected, (left, right)
                assert cwa_codd_leq(left, right) == expected

    def test_pcwa_equals_plotkin(self):
        """Theorem 7.1, last item: ⋐_CWA and ⊑^P coincide on Codd databases."""
        for left in self.CODD_SAMPLES:
            for right in self.CODD_SAMPLES:
                assert leq_pcwa(left, right) == plotkin_leq(left, right), (left, right)
