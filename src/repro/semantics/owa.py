"""The open-world semantics: complete supersets of valuation images.

``[[D]]_OWA = { E complete | ∃ valuation h with h(D) ⊆ E }``
(Section 2.3).  ``R_sem`` is ``⊆``, the homomorphism class is all
(database) homomorphisms, and naive evaluation is sound exactly for
unions of conjunctive queries (Fact 1 / Theorem 5.2 / [Libkin 2011]).

``[[D]]_OWA`` contains arbitrarily large extensions, so bounded
enumeration is inherently an *under-approximation of the set* (hence an
over-approximation of certain answers); ``extra_facts`` controls how
many tuples may be added on top of a valuation image.  See
``repro.core.certain`` for how the direction of the approximation is
used soundly.
"""

from __future__ import annotations

import itertools
import math
from typing import Hashable, Iterator, Sequence

from repro.data.instance import Instance
from repro.data.schema import Schema
from repro.homs.search import has_homomorphism
from repro.semantics.base import (
    Semantics,
    guard_limit,
    iter_facts_over,
    iter_valuation_images,
)

__all__ = ["OWA"]


class OWA(Semantics):
    """Open-world assumption."""

    key = "owa"
    name = "OWA"
    notation = "[[·]]_OWA"
    saturated = True
    hom_class = "homomorphisms"
    sound_fragment = "EPos"
    default_extra_facts = 1

    def enumeration_exact(self, extra_facts: int | None) -> bool:
        return False  # OWA extensions are unbounded

    def expand(
        self,
        instance: Instance,
        pool: Sequence[Hashable],
        schema: Schema | None = None,
        extra_facts: int | None = None,
        limit: int = 500_000,
    ) -> Iterator[Instance]:
        if extra_facts is None:
            extra_facts = self.default_extra_facts
        schema = schema or instance.schema()
        all_facts = list(iter_facts_over(schema, list(pool)))
        n_valuations = len(pool) ** len(instance.nulls())
        n_subsets = sum(math.comb(len(all_facts), k) for k in range(extra_facts + 1))
        guard_limit(n_valuations * n_subsets, limit, "OWA expansion")

        seen: set[Instance] = set()
        for image in iter_valuation_images(instance, pool):
            for k in range(extra_facts + 1):
                for extra in itertools.combinations(all_facts, k):
                    extended = image
                    for name, row in extra:
                        extended = extended.add_fact(name, row)
                    if extended not in seen:
                        seen.add(extended)
                        yield extended

    def contains(self, instance: Instance, complete: Instance) -> bool:
        self._check_complete(complete)
        # E ∈ [[D]]_OWA iff some valuation maps D into E.
        return has_homomorphism(
            instance,
            complete,
            fix_constants=True,
            require_complete_image=True,
        )
