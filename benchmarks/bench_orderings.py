"""Experiments T6.2, T7.1 and L6-codd — orderings, updates, Codd correspondences.

* Theorem 6.2: reflexive-transitive closure of CWA updates = ≼_CWA, and
  of CWA+OWA updates = ≼_OWA;
* Theorem 7.1: closure of CWA+copying updates = ⋐_CWA; on Codd databases
  ⋐_CWA = ⊑^P;
* Section 6 recap (Libkin 2011): on Codd databases ≼_OWA = ⊑^H and
  ≼_CWA = ⊑^P + perfect matching.

Each bench sweeps an instance grid and counts (dis)agreements —
expected: perfect agreement.
"""

from repro.data.instance import Instance
from repro.data.values import Null
from repro.orders.codd import has_refinement_matching, hoare_leq, plotkin_leq
from repro.orders.semantic import leq_cwa, leq_owa, leq_pcwa
from repro.orders.updates import reachable

X, Y = Null("x"), Null("y")

NAIVE_GRID = [
    Instance({"R": [(X, Y)]}),
    Instance({"R": [(X, X)]}),
    Instance({"R": [(1, X)]}),
    Instance({"R": [(1, 2)]}),
    Instance({"R": [(1, 1), (2, 2)]}),
    Instance({"R": [(1, 2), (2, 1)]}),
]

CODD_GRID = [
    Instance({"R": [(1, Null("a"))]}),
    Instance({"R": [(1, Null("b")), (2, Null("c"))]}),
    Instance({"R": [(1, 2)]}),
    Instance({"R": [(1, 2), (1, 3)]}),
    Instance({"R": [(Null("p"), Null("q"))]}),
]


def sweep(grid, left_fn, right_fn):
    agree = total = 0
    for left in grid:
        for right in grid:
            total += 1
            agree += left_fn(left, right) == right_fn(left, right)
    return agree, total


def test_theorem_6_2_cwa_updates(benchmark):
    agree, total = benchmark(
        sweep, NAIVE_GRID, lambda a, b: reachable(a, b, ("cwa",)), leq_cwa
    )
    benchmark.extra_info["agreement"] = f"{agree}/{total}"
    assert agree == total


def test_theorem_6_2_owa_updates(benchmark):
    agree, total = benchmark(
        sweep, NAIVE_GRID, lambda a, b: reachable(a, b, ("cwa", "owa")), leq_owa
    )
    benchmark.extra_info["agreement"] = f"{agree}/{total}"
    assert agree == total


def test_theorem_7_1_copying_updates(benchmark):
    agree, total = benchmark(
        sweep, NAIVE_GRID, lambda a, b: reachable(a, b, ("cwa", "copying")), leq_pcwa
    )
    benchmark.extra_info["agreement"] = f"{agree}/{total}"
    assert agree == total


def test_libkin_2011_owa_is_hoare_on_codd(benchmark):
    agree, total = benchmark(sweep, CODD_GRID, leq_owa, hoare_leq)
    benchmark.extra_info["agreement"] = f"{agree}/{total}"
    assert agree == total


def test_libkin_2011_cwa_is_plotkin_plus_matching(benchmark):
    def characterisation(a, b):
        return plotkin_leq(a, b) and has_refinement_matching(a, b)

    agree, total = benchmark(sweep, CODD_GRID, leq_cwa, characterisation)
    benchmark.extra_info["agreement"] = f"{agree}/{total}"
    assert agree == total


def test_theorem_7_1_pcwa_is_plotkin_on_codd(benchmark):
    agree, total = benchmark(sweep, CODD_GRID, leq_pcwa, plotkin_leq)
    benchmark.extra_info["agreement"] = f"{agree}/{total}"
    assert agree == total
