"""Tests for the semantic orderings (Proposition 6.1, Theorem 7.1).

Besides unit behaviour, these validate the defining property
``x ≼ y ⇔ [[y]] ⊆ [[x]]`` against the brute-force semantics on small
instances — the orderings are *derived* notions and must agree with the
semantics that induce them.
"""

import pytest

from repro.data.instance import Instance
from repro.data.values import Null
from repro.orders.semantic import ORDERINGS, leq_cwa, leq_owa, leq_pcwa, leq_wcwa
from repro.semantics import get_semantics

X, Y, Z = Null("x"), Null("y"), Null("z")


class TestBasics:
    def test_reflexive(self):
        d = Instance({"R": [(1, X)]})
        for leq in ORDERINGS.values():
            assert leq(d, d)

    def test_substitution_increases_information(self):
        d = Instance({"R": [(1, X)]})
        e = Instance({"R": [(1, 2)]})
        assert leq_owa(d, e) and leq_cwa(d, e) and leq_wcwa(d, e) and leq_pcwa(d, e)

    def test_owa_allows_growth_cwa_does_not(self):
        d = Instance({"R": [(1, X)]})
        e = Instance({"R": [(1, 2), (5, 5)]})
        assert leq_owa(d, e)
        assert not leq_cwa(d, e)

    def test_wcwa_between(self):
        d = Instance({"D": [(X, Y)]})
        within = Instance({"D": [(1, 2), (2, 1)]})
        outside = Instance({"D": [(1, 2), (3, 3)]})
        assert leq_wcwa(d, within)
        assert not leq_wcwa(d, outside)
        assert leq_owa(d, outside)

    def test_pcwa_is_union_coverage(self):
        d = Instance({"D": [(X, Y)]})
        e = Instance({"D": [(1, 2), (2, 1)]})
        assert not leq_cwa(d, e)
        assert leq_pcwa(d, e)

    def test_constants_pin(self):
        d = Instance({"R": [(1, 2)]})
        e = Instance({"R": [(3, 4)]})
        for leq in ORDERINGS.values():
            assert not leq(d, e)

    def test_transitive_on_samples(self):
        a = Instance({"R": [(X, Y)]})
        b = Instance({"R": [(X, 2)]})
        c = Instance({"R": [(1, 2)]})
        for leq in (leq_owa, leq_cwa, leq_wcwa, leq_pcwa):
            assert leq(a, b) and leq(b, c) and leq(a, c)


@pytest.mark.parametrize("key,leq", sorted(ORDERINGS.items()))
def test_ordering_agrees_with_semantics_inclusion(key, leq):
    """``D ≼ D' ⇔ [[D']] ⊆ [[D]]`` checked by enumeration over a pool.

    The instances are small enough that the pool enumeration is the real
    thing for the substitution-based semantics; for OWA/WCWA the check
    uses membership tests on the enumerated members instead.
    """
    sem = get_semantics(key)
    candidates = [
        Instance({"R": [(X, Y)]}),
        Instance({"R": [(X, X)]}),
        Instance({"R": [(1, X)]}),
        Instance({"R": [(1, 2)]}),
        Instance({"R": [(1, 2), (2, 1)]}),
    ]
    pool = [1, 2]
    extra = {"extra_facts": 1} if key in ("owa", "wcwa") else {}
    for left in candidates:
        for right in candidates:
            # enumerate [[right]] and test membership in [[left]]
            inclusion = all(
                sem.contains(left, member)
                for member in sem.expand(right, pool, **extra)
            )
            if leq(left, right):
                assert inclusion, f"{key}: {left!r} ≼ {right!r} but inclusion fails"
            # (the converse over a bounded pool can have false positives
            # for inclusion, so only the sound direction is asserted)
