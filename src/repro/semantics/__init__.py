"""Semantics of incompleteness: six concrete semantics and the abstract frameworks."""

from repro.semantics.base import ExpansionLimitError, Semantics
from repro.semantics.cwa import CWA
from repro.semantics.domain import DatabaseDomain
from repro.semantics.minimal import MinCWA, MinPowersetCWA
from repro.semantics.owa import OWA
from repro.semantics.powerset import PowersetCWA
from repro.semantics.lifting import LiftedDomain, lift_domain, lift_query
from repro.semantics.relations import PowersetRelationPair, RelationPair
from repro.semantics.wcwa import WCWA

#: Singleton instances of the six semantics, keyed by their short names.
ALL_SEMANTICS = {
    s.key: s
    for s in (OWA(), CWA(), WCWA(), PowersetCWA(), MinCWA(), MinPowersetCWA())
}


def get_semantics(key: str) -> Semantics:
    """Look up a semantics by key: owa, cwa, wcwa, pcwa, mincwa, minpcwa."""
    try:
        return ALL_SEMANTICS[key]
    except KeyError:
        raise ValueError(
            f"unknown semantics {key!r}; available: {', '.join(sorted(ALL_SEMANTICS))}"
        ) from None


__all__ = [
    "Semantics",
    "ExpansionLimitError",
    "OWA",
    "CWA",
    "WCWA",
    "PowersetCWA",
    "MinCWA",
    "MinPowersetCWA",
    "DatabaseDomain",
    "LiftedDomain",
    "lift_domain",
    "lift_query",
    "RelationPair",
    "PowersetRelationPair",
    "ALL_SEMANTICS",
    "get_semantics",
]
