"""Tests for repro.core.monotone: empirical monotonicity/preservation checks."""

import pytest

from repro.core.monotone import (
    HOM_CLASSES,
    preservation_counterexample,
    weak_monotonicity_counterexample,
)
from repro.data.instance import Instance
from repro.data.values import Null
from repro.logic.parser import parse
from repro.logic.queries import Query
from repro.semantics import get_semantics

X, Y = Null("x"), Null("y")
D0 = Instance({"D": [(X, Y), (Y, X)]})
SMALL = [
    Instance({"D": [(X, Y)]}),
    D0,
    Instance({"D": [(1, X)]}),
]


class TestWeakMonotonicity:
    def test_ucq_weakly_monotone_everywhere(self):
        q = Query.boolean(parse("exists a, b . D(a,b) & D(b,a)"))
        for key in ("owa", "cwa", "wcwa", "pcwa"):
            assert (
                weak_monotonicity_counterexample(q, SMALL, get_semantics(key)) is None
            ), key

    def test_forall_query_fails_owa(self):
        q = Query.boolean(parse("forall a . exists b . D(a, b)"))
        ce = weak_monotonicity_counterexample(q, SMALL, get_semantics("owa"))
        assert ce is not None
        assert ce.lost == ()

    def test_forall_query_survives_cwa(self):
        q = Query.boolean(parse("forall a . exists b . D(a, b)"))
        assert weak_monotonicity_counterexample(q, SMALL, get_semantics("cwa")) is None

    def test_negation_fails_cwa(self):
        q = Query.boolean(parse("!(exists a . D(a, a))"))
        ce = weak_monotonicity_counterexample(q, SMALL, get_semantics("cwa"))
        assert ce is not None


class TestPreservation:
    PAIRS = [
        (Instance({"D": [(1, 2)]}), Instance({"D": [(3, 3)]})),
        (Instance({"D": [(1, 2), (2, 1)]}), Instance({"D": [(1, 1)]})),
        (Instance({"D": [(1, 2)]}), Instance({"D": [(1, 2), (2, 1)]})),
    ]

    def complete_pairs(self):
        # drop constants so homs exist: use fix_constants anyway; these
        # pairs exercise hom enumeration between complete instances
        return self.PAIRS

    def test_hom_classes_exposed(self):
        assert set(HOM_CLASSES) == {"hom", "onto", "strong_onto", "minimal"}

    def test_ucq_preserved_under_homs(self):
        q = Query.boolean(parse("exists a, b . D(a, b)"))
        pairs = [(s.apply({1: 5, 2: 6}), t) for s, t in self.PAIRS]  # renamed
        assert preservation_counterexample(q, self.PAIRS, "hom") is None

    def test_forall_not_preserved_under_homs(self):
        # ∀a∃b D(a,b) true in {(1,2),(2,1)} but adding values breaks it:
        # build a pair with a plain hom into a bigger instance
        q = Query.boolean(parse("forall a . exists b . D(a, b)"))
        pairs = [
            (Instance({"D": [(1, 2), (2, 1)]}), Instance({"D": [(1, 2), (2, 1), (1, 3)]})),
        ]
        ce = preservation_counterexample(q, pairs, "hom")
        assert ce is not None

    def test_forall_preserved_under_onto(self):
        q = Query.boolean(parse("forall a . exists b . D(a, b)"))
        pairs = [
            (Instance({"D": [(1, 2), (2, 1)]}), Instance({"D": [(1, 2), (2, 1), (1, 1)]})),
        ]
        assert preservation_counterexample(q, pairs, "onto") is None

    def test_guard_counterexample_from_paper(self):
        """Remark after Prop 5.1: ∀x (R(x,x) → S(x)) is not preserved
        under strong onto homs when guard variables repeat."""
        q = Query.boolean(parse("forall v . R(v, v) -> S(v)"))
        # can't use database homs with distinct constants — model the
        # paper's h: {1,2} → 3 with null-based instances instead
        a, b, c = Null("a"), Null("b"), Null("c")
        source = Instance({"R": [(a, b)], "S": [(a,), (b,)]})
        target = Instance({"R": [(c, c)]})
        # h(a)=h(b)=c maps R-fact onto R(c,c) but S-facts must go too —
        # build target accordingly minus S(c) to break the implication:
        target = Instance({"R": [(c, c)], "S": []})
        # no strong onto hom exists here (S-facts must map somewhere),
        # so use the exact paper shape: S empty in both
        source = Instance({"R": [(a, b)]})
        ce = preservation_counterexample(q, [(source, target)], "strong_onto")
        assert ce is not None

    def test_unknown_class_raises(self):
        q = Query.boolean(parse("exists a . D(a, a)"))
        with pytest.raises(ValueError):
            preservation_counterexample(q, self.PAIRS, "bogus")
