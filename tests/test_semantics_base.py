"""Tests for the semantics base utilities and cross-semantics laws."""

import pytest

from repro.data.instance import Instance
from repro.data.schema import Schema
from repro.data.values import Null
from repro.semantics import get_semantics
from repro.semantics.base import (
    ExpansionLimitError,
    guard_limit,
    iter_facts_over,
    iter_valuation_images,
)

X, Y = Null("x"), Null("y")


class TestUtilities:
    def test_iter_valuation_images_dedupes(self):
        d = Instance({"R": [(X, Y)]})
        images = list(iter_valuation_images(d, [1]))
        assert images == [Instance({"R": [(1, 1)]})]

    def test_iter_valuation_images_no_nulls(self):
        d = Instance({"R": [(1, 2)]})
        assert list(iter_valuation_images(d, [5, 6])) == [d]

    def test_iter_facts_over_counts(self):
        schema = Schema({"R": 2, "S": 1})
        facts = list(iter_facts_over(schema, [1, 2]))
        assert len(facts) == 4 + 2
        assert ("S", (1,)) in facts

    def test_guard_limit(self):
        guard_limit(10, 10, "fine")
        with pytest.raises(ExpansionLimitError):
            guard_limit(11, 10, "too much")

    def test_semantics_repr(self):
        assert "CWA" in repr(get_semantics("cwa"))


class TestCrossSemanticsLaws:
    """Structural laws connecting the semantics (Sections 2.3, 4.3)."""

    INSTANCES = [
        Instance({"R": [(X, Y)]}),
        Instance({"R": [(1, X), (X, 2)]}),
        Instance({"R": [(X, X)]}),
    ]

    def test_owa_members_contain_cwa_members(self):
        """D' ∈ [[D]]_OWA iff D' ⊇ some D'' ∈ [[D]]_CWA (Section 2.3)."""
        owa, cwa = get_semantics("owa"), get_semantics("cwa")
        for d in self.INSTANCES:
            for member in owa.expand(d, [1, 2], extra_facts=1):
                assert any(
                    core_member <= member for core_member in cwa.expand(d, [1, 2])
                )

    def test_cwa_members_are_wcwa_and_owa_members(self):
        """[[D]]_CWA ⊆ [[D]]_WCWA ⊆ [[D]]_OWA."""
        cwa, wcwa, owa = (get_semantics(k) for k in ("cwa", "wcwa", "owa"))
        for d in self.INSTANCES:
            for member in cwa.expand(d, [1, 2]):
                assert wcwa.contains(d, member)
                assert owa.contains(d, member)

    def test_wcwa_members_are_owa_members(self):
        wcwa, owa = get_semantics("wcwa"), get_semantics("owa")
        for d in self.INSTANCES:
            for member in wcwa.expand(d, [1, 2], extra_facts=1):
                assert owa.contains(d, member)

    def test_min_cwa_members_are_cwa_members(self):
        """[[D]]^min_CWA ⊆ [[D]]_CWA."""
        mincwa, cwa = get_semantics("mincwa"), get_semantics("cwa")
        for d in self.INSTANCES:
            for member in mincwa.expand(d, [1, 2]):
                assert cwa.contains(d, member)

    def test_cwa_members_are_pcwa_members(self):
        """[[D]]_CWA ⊆ ⦇D⦈_CWA (singleton unions)."""
        cwa, pcwa = get_semantics("cwa"), get_semantics("pcwa")
        for d in self.INSTANCES:
            for member in cwa.expand(d, [1, 2]):
                assert pcwa.contains(d, member)

    def test_min_pcwa_members_are_pcwa_members(self):
        minp, pcwa = get_semantics("minpcwa"), get_semantics("pcwa")
        for d in self.INSTANCES:
            for member in minp.expand(d, [1, 2], extra_facts=3):
                assert pcwa.contains(d, member)

    def test_complete_instance_fixed_point(self):
        """For a complete D: [[D]]_CWA = {D} and D ∈ [[D]] everywhere."""
        d = Instance({"R": [(1, 2)]})
        assert list(get_semantics("cwa").expand(d, [3])) == [d]
        for key in ("owa", "cwa", "wcwa", "pcwa", "mincwa", "minpcwa"):
            assert get_semantics(key).contains(d, d), key
