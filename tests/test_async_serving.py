"""The asyncio serving core: pipelining, admission control, deadlines.

The acceptance criteria of the async redesign live here:

* **pipelining round-trip** — N ops written on one connection before a
  single response is read, responses matched by ``id``, results
  identical to serial execution (and provably out of order when a slow
  op pipelines behind a fast one);
* **admission control** — once ``max_inflight`` is exceeded the server
  answers with a typed ``overloaded`` frame, never a hang or a silent
  drop, and the slot is released for the next request;
* **slowloris defence** — a partial-frame client is reaped on the idle
  timeout without ever occupying an admission slot;
* the :class:`~repro.client.AsyncClient` mirrors the sync policy
  (deadlines, retry, failover, read-your-writes) over one pipelined
  connection per endpoint.
"""

import asyncio
import json
import socket
import threading
import time

import pytest

from repro import faults
from repro.client import (
    AsyncClient,
    Client,
    DeadlineExceeded,
    IndeterminateWriteError,
    OverloadedServerError,
    StaleReadError,
)
from repro.server import (
    FEATURES,
    PROTO_VERSION,
    AsyncServer,
    QueryService,
    async_serve,
    serve,
)
from repro.session import Database


def address_of(server) -> str:
    return f"{server.address[0]}:{server.address[1]}"


@pytest.fixture(autouse=True)
def clean_global_failpoints():
    yield
    faults.install(None)


class Wire:
    """A bare-socket JSON-lines peer: full control over frame timing."""

    def __init__(self, address, timeout=10.0):
        self.sock = socket.create_connection(address, timeout=timeout)
        self.reader = self.sock.makefile("r", encoding="utf-8", newline="\n")

    def send(self, request: dict) -> None:
        self.sock.sendall((json.dumps(request) + "\n").encode("utf-8"))

    def recv(self) -> dict:
        line = self.reader.readline()
        assert line, "server closed the connection instead of answering"
        return json.loads(line)

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass


INSTANCE = {"R": [(1, 2), (2, 3)], "S": [(2, 4)]}


class TestProtocolV2:
    def test_async_server_advertises_full_features(self):
        server = async_serve(Database(INSTANCE))
        try:
            with Client(server.address) as client:
                pong = client.ping()
                assert pong["proto"] == PROTO_VERSION == 2
                assert pong["features"] == list(FEATURES)
                stats = client.stats()
                assert stats["proto"] == 2
                assert stats["features"] == ["pipelining", "deadline_ms"]
        finally:
            server.shutdown()

    def test_threaded_shim_advertises_in_order_pipelining_only(self):
        with serve(Database(INSTANCE)) as server:
            with Client(server.address) as client:
                pong = client.ping()
                assert pong["proto"] == 2
                assert pong["features"] == ["pipelining"]


class TestPipelining:
    QUERIES = [
        "R(x, y)",
        "S(x, y)",
        "exists z (R(x, z) & S(z, y))",
        "exists x (exists y (R(x, y)))",
        "R(x, y)",  # a duplicate must get its own correlated response
        "exists x (S(x, 9))",
    ]

    def test_pipelined_responses_match_serial_execution_by_id(self):
        # serial ground truth: the same ops against an identical session
        serial = QueryService(Database(INSTANCE))
        expected = {
            i: serial.handle({"op": "query", "query": text})
            for i, text in enumerate(self.QUERIES)
        }
        server = async_serve(Database(INSTANCE))
        try:
            wire = Wire(server.address)
            # every request leaves before any response is read
            for i, text in enumerate(self.QUERIES):
                wire.send({"id": i, "op": "query", "query": text})
            got = {}
            for _ in self.QUERIES:
                response = wire.recv()
                got[response["id"]] = response
            wire.close()
        finally:
            server.shutdown()
        assert set(got) == set(expected)
        for i, want in expected.items():
            assert got[i]["ok"], got[i]
            assert got[i]["answers"] == want["answers"]
            assert got[i]["holds"] == want["holds"]

    def test_responses_return_out_of_order(self):
        server = async_serve(Database(INSTANCE))
        try:
            wire = Wire(server.address)
            # a slow op first: an unreachable staleness floor parks its
            # executor thread for the full wait window
            wire.send({
                "id": "slow", "op": "query", "query": "R(x, y)",
                "min_generation": 99, "wait_timeout_s": 1.5,
            })
            wire.send({"id": "fast", "op": "ping"})
            first, second = wire.recv(), wire.recv()
            wire.close()
        finally:
            server.shutdown()
        assert first["id"] == "fast" and first["pong"]
        assert second["id"] == "slow" and second["error_type"] == "stale"

    def test_threaded_shim_still_answers_pipelined_requests_in_order(self):
        with serve(Database(INSTANCE)) as server:
            wire = Wire(server.address)
            for i in range(4):
                wire.send({"id": i, "op": "ping"})
            assert [wire.recv()["id"] for _ in range(4)] == [0, 1, 2, 3]
            wire.close()


class TestAdmissionControl:
    def test_overload_is_a_typed_frame_never_a_hang_or_drop(self):
        service = QueryService(Database(INSTANCE), features=FEATURES)
        server = AsyncServer(service, max_inflight=1).start()
        try:
            wire = Wire(server.address)
            # every one of these waits out a 1s staleness window, so the
            # single slot stays occupied while the rest arrive
            for i in range(4):
                wire.send({
                    "id": i, "op": "query", "query": "R(x, y)",
                    "min_generation": 99, "wait_timeout_s": 1.0,
                })
            frames = [wire.recv() for _ in range(4)]  # all 4 answered
            kinds = sorted(frame["error_type"] for frame in frames)
            assert kinds.count("overloaded") == 3 and kinds.count("stale") == 1
            shed = next(f for f in frames if f["error_type"] == "overloaded")
            assert shed["max_inflight"] == 1 and shed["id"] in {0, 1, 2, 3}
            # the slot is released: the next request is served normally
            wire.send({"id": 9, "op": "ping"})
            assert wire.recv()["pong"]
            wire.close()
            assert service.handle({"op": "stats"})["requests"]["overloaded"] == 3
        finally:
            server.shutdown()

    def test_connection_limit_refused_with_typed_frame(self):
        service = QueryService(Database(), features=FEATURES)
        server = AsyncServer(service, max_conns=1).start()
        try:
            keeper = Wire(server.address)
            keeper.send({"op": "ping"})
            keeper.recv()  # the connection is registered and live
            refused = Wire(server.address)
            frame = refused.recv()
            assert frame["error_type"] == "overloaded"
            assert frame["max_conns"] == 1
            keeper.close()
            refused.close()
        finally:
            server.shutdown()

    def test_overloaded_writes_are_safely_retried_by_the_client(self):
        service = QueryService(Database(INSTANCE), features=FEATURES)
        server = AsyncServer(service, max_inflight=1).start()
        try:
            blocker = Wire(server.address)
            blocker.send({
                "op": "query", "query": "R(x, y)",
                "min_generation": 99, "wait_timeout_s": 0.6,
            })
            time.sleep(0.05)  # the slot is now held
            with Client(
                server.address, retries=8, backoff_base=0.1, backoff_cap=0.3
            ) as client:
                # sheds at first (overloaded = not executed, retry is safe),
                # then lands once the blocker's wait expires
                assert client.insert("R", [[8, 9]])["changed"] == 1
            assert service.handle({"op": "stats"})["requests"]["overloaded"] >= 1
            blocker.close()
        finally:
            server.shutdown()


class TestDeadlines:
    def test_deadline_ms_answers_with_typed_frame_on_time(self):
        server = async_serve(Database(INSTANCE))
        try:
            wire = Wire(server.address)
            started = time.monotonic()
            wire.send({
                "id": 5, "op": "query", "query": "R(x, y)",
                "min_generation": 99, "wait_timeout_s": 5.0,
                "deadline_ms": 200,
            })
            frame = wire.recv()
            elapsed = time.monotonic() - started
            wire.close()
        finally:
            server.shutdown()
        assert frame["error_type"] == "deadline" and frame["id"] == 5
        assert frame["deadline_ms"] == 200
        assert 0.15 <= elapsed < 2.0  # answered at the deadline, not the wait

    def test_invalid_deadline_ms_is_a_request_error(self):
        server = async_serve(Database())
        try:
            wire = Wire(server.address)
            wire.send({"id": 1, "op": "ping", "deadline_ms": -3})
            frame = wire.recv()
            assert not frame["ok"] and "deadline_ms" in frame["error"]
            assert frame["id"] == 1
            wire.close()
        finally:
            server.shutdown()

    def test_expired_deadline_holds_slot_until_the_op_finishes(self):
        service = QueryService(Database(INSTANCE), features=FEATURES)
        server = AsyncServer(service, max_inflight=1).start()
        try:
            wire = Wire(server.address)
            wire.send({
                "id": 1, "op": "query", "query": "R(x, y)",
                "min_generation": 99, "wait_timeout_s": 0.8,
                "deadline_ms": 100,
            })
            assert wire.recv()["error_type"] == "deadline"
            # the abandoned op still occupies the executor: admission
            # control keeps counting it until it truly completes
            wire.send({"id": 2, "op": "ping"})
            assert wire.recv()["error_type"] == "overloaded"
            time.sleep(1.0)  # the stale wait has now expired
            wire.send({"id": 3, "op": "ping"})
            assert wire.recv()["pong"]
            wire.close()
            assert service.handle({"op": "stats"})["requests"]["deadline_expired"] == 1
        finally:
            server.shutdown()


class TestSlowloris:
    def test_partial_frame_client_is_reaped_on_idle_timeout(self):
        service = QueryService(Database(), features=FEATURES)
        server = AsyncServer(service, idle_timeout_s=0.3).start()
        try:
            victim = socket.create_connection(server.address, timeout=5.0)
            victim.sendall(b'{"op": "ping"')  # half a frame, then silence
            victim.settimeout(5.0)
            started = time.monotonic()
            assert victim.recv(4096) == b""  # reaped: EOF, not a hang
            assert time.monotonic() - started < 2.0
            victim.close()
        finally:
            server.shutdown()

    def test_slowloris_never_occupies_an_admission_slot(self):
        service = QueryService(Database(INSTANCE), features=FEATURES)
        server = AsyncServer(service, max_inflight=1, idle_timeout_s=5.0).start()
        try:
            loris = socket.create_connection(server.address, timeout=5.0)
            loris.sendall(b'{"op": "query", "query"')  # stalls mid-frame
            time.sleep(0.1)
            # a whole-frame client is served instantly: the stalled frame
            # was never admitted, so the only slot is free
            wire = Wire(server.address)
            wire.send({"op": "query", "query": "R(x, y)"})
            assert wire.recv()["answers"] == [[1, 2], [2, 3]]
            wire.close()
            loris.close()
        finally:
            server.shutdown()


class TestAsyncFailpoints:
    def test_hang_on_recv_is_latency_not_failure(self):
        server = async_serve(Database(INSTANCE))
        try:
            faults.install("server.recv=once:hang(300)")
            with Client(server.address) as client:
                started = time.monotonic()
                assert client.ping()["pong"]
                assert time.monotonic() - started >= 0.25
        finally:
            server.shutdown()

    def test_injected_send_drop_loses_the_response_not_the_server(self):
        server = async_serve(Database(INSTANCE))
        try:
            faults.install("server.send=once:drop-conn")
            with Client(server.address, retries=3, backoff_base=0.02) as client:
                # the first response is dropped (connection dies), the
                # idempotent retry reconnects and succeeds
                assert client.query("R(x, y)")["answers"] == [[1, 2], [2, 3]]
            with Client(server.address) as probe:
                assert probe.ping()["pong"]  # the server survived
        finally:
            server.shutdown()

    def test_injected_send_drop_makes_a_write_indeterminate(self):
        server = async_serve(Database(INSTANCE))
        try:
            faults.install("server.send=once:drop-conn")
            with Client(server.address) as client:
                with pytest.raises(IndeterminateWriteError):
                    client.insert("R", [[7, 7]])
        finally:
            server.shutdown()


class TestGracefulDrain:
    def test_inflight_response_is_written_during_drain(self):
        server = async_serve(Database(INSTANCE))
        wire = Wire(server.address)
        wire.send({
            "id": 1, "op": "query", "query": "R(x, y)",
            "min_generation": 99, "wait_timeout_s": 0.5,
        })
        time.sleep(0.1)  # the request is in an executor slot
        stopper = threading.Thread(target=server.shutdown, args=(5.0,))
        stopper.start()
        frame = wire.recv()  # still answered, mid-shutdown
        assert frame["id"] == 1 and frame["error_type"] == "stale"
        stopper.join(timeout=10)
        wire.close()


class TestAsyncClient:
    def test_round_trip_and_read_your_writes(self):
        server = async_serve(Database({"R": [(1, 2)]}))
        try:
            async def scenario():
                async with AsyncClient(server.address) as client:
                    assert (await client.query("R(x, y)"))["answers"] == [[1, 2]]
                    ack = await client.insert("R", [[3, 4]])
                    assert ack["changed"] == 1
                    assert client.last_write_generation == ack["generation"]
                    answers = (await client.query("R(x, y)"))["answers"]
                    assert {tuple(row) for row in answers} == {(1, 2), (3, 4)}
            asyncio.run(scenario())
        finally:
            server.shutdown()

    def test_out_of_order_responses_reach_their_callers(self):
        server = async_serve(Database(INSTANCE))
        try:
            async def scenario():
                async with AsyncClient(
                    server.address, retries=0, wait_timeout_s=1.2
                ) as client:
                    slow = asyncio.ensure_future(
                        client.query("R(x, y)", min_generation=99)
                    )
                    await asyncio.sleep(0.1)  # the slow query is in flight
                    started = time.monotonic()
                    pong = await client.ping()  # same connection, pipelined
                    assert pong["pong"]
                    assert time.monotonic() - started < 0.5
                    assert not slow.done()  # truly answered out of order
                    with pytest.raises(StaleReadError):
                        await slow
            asyncio.run(scenario())
        finally:
            server.shutdown()

    def test_fanout_preserves_input_order(self):
        server = async_serve(Database(INSTANCE))
        try:
            async def scenario():
                async with AsyncClient(server.address) as client:
                    payloads = [{"op": "query", "query": "R(x, y)"},
                                {"op": "ping"},
                                {"op": "query", "query": "S(x, y)"}]
                    results = await client.fanout(payloads, concurrency=2)
                    assert results[0]["answers"] == [[1, 2], [2, 3]]
                    assert results[1]["pong"] is True
                    assert results[2]["answers"] == [[2, 4]]
            asyncio.run(scenario())
        finally:
            server.shutdown()

    def test_fanout_return_exceptions_isolates_failures(self):
        server = async_serve(Database(INSTANCE))
        try:
            async def scenario():
                async with AsyncClient(server.address, retries=0) as client:
                    results = await client.fanout(
                        [{"op": "ping"}, {"op": "nope"}],
                        return_exceptions=True,
                    )
                    assert results[0]["pong"] is True
                    assert isinstance(results[1], Exception)
            asyncio.run(scenario())
        finally:
            server.shutdown()

    def test_overloaded_reads_retry_until_admitted(self):
        service = QueryService(Database(INSTANCE), features=FEATURES)
        server = AsyncServer(service, max_inflight=1).start()
        try:
            blocker = Wire(server.address)
            blocker.send({
                "op": "query", "query": "R(x, y)",
                "min_generation": 99, "wait_timeout_s": 0.6,
            })
            time.sleep(0.05)

            async def scenario():
                async with AsyncClient(
                    server.address, retries=8, backoff_base=0.1, backoff_cap=0.3
                ) as client:
                    assert (await client.query("R(x, y)"))["ok"]
            asyncio.run(scenario())
            assert service.handle({"op": "stats"})["requests"]["overloaded"] >= 1
            blocker.close()
        finally:
            server.shutdown()

    def test_overloaded_without_budget_surfaces_typed_error(self):
        service = QueryService(Database(INSTANCE), features=FEATURES)
        server = AsyncServer(service, max_inflight=1).start()
        try:
            blocker = Wire(server.address)
            blocker.send({
                "op": "query", "query": "R(x, y)",
                "min_generation": 99, "wait_timeout_s": 2.0,
            })
            time.sleep(0.05)

            async def scenario():
                async with AsyncClient(server.address, retries=0) as client:
                    with pytest.raises(OverloadedServerError) as err:
                        await client.query("S(x, y)")
                    assert err.value.fields["max_inflight"] == 1
            asyncio.run(scenario())
            blocker.close()
        finally:
            server.shutdown()

    def test_client_deadline_fires_on_schedule(self):
        server = async_serve(Database(INSTANCE))
        try:
            async def scenario():
                async with AsyncClient(
                    server.address, timeout=0.8, retries=10,
                    backoff_base=0.05, wait_timeout_s=5.0,
                ) as client:
                    started = time.monotonic()
                    with pytest.raises(DeadlineExceeded):
                        # an unreachable floor: the server would block for
                        # 5s, but the propagated deadline_ms and the
                        # client budget cut it off at 0.8s
                        await client.query("R(x, y)", min_generation=99)
                    elapsed = time.monotonic() - started
                    assert elapsed < 2.0
            asyncio.run(scenario())
        finally:
            server.shutdown()

    def test_reads_fail_over_to_a_replica_when_the_primary_dies(self):
        primary = async_serve(Database(INSTANCE))
        replica = async_serve(replicate_from=address_of(primary))
        try:
            with Client(primary.address) as seed:
                generation = seed.insert("R", [[5, 6]])["generation"]
            with Client(replica.address) as check:
                assert check.query("R(x, y)", min_generation=generation)["ok"]
            primary.shutdown()

            async def scenario():
                async with AsyncClient(
                    address_of(primary), [address_of(replica)],
                    retries=4, backoff_base=0.05,
                ) as client:
                    answers = (await client.query(
                        "R(x, y)", min_generation=generation
                    ))["answers"]
                    assert [5, 6] in answers
            asyncio.run(scenario())
        finally:
            primary.shutdown()
            replica.shutdown()


class TestReplicationOverAsync:
    def test_replicate_promote_and_read_your_writes(self):
        primary = async_serve(Database({"R": [(1, 2)]}))
        replica = async_serve(replicate_from=address_of(primary))
        try:
            with Client(primary.address) as writer:
                generation = writer.insert("R", [[3, 4]])["generation"]
            with Client(replica.address) as reader:
                response = reader.query("R(x, y)", min_generation=generation)
                assert {tuple(r) for r in response["answers"]} == {(1, 2), (3, 4)}
                assert reader.stats()["role"] == "replica"
            with Client(replica.address) as admin:
                assert admin.promote(address_of(replica))["role"] == "primary"
                assert admin.insert("R", [[5, 6]])["changed"] == 1
        finally:
            replica.shutdown()
            primary.shutdown()
