"""Columnar execution of compiled plans over dictionary-encoded columns.

This module is the third engine: it reuses the operator DAG built by
:mod:`repro.logic.compile` (one compiler, no plan drift) but executes it
over the int-encoded columns of :mod:`repro.data.dictionary` instead of
tuples of cell objects.  Every operator has a columnar twin:

===================  ==================================================
compiled operator    columnar kernel
===================  ==================================================
scan                 ``col-scan`` — cached frozenset of encoded rows;
                     constant probes hit the relation's int-keyed index
hash join            ``col-hash-join`` over int tuples; plain-scan
                     probes hit the encoded relation's cached index
scan ⋈ scan          ``sort-merge-join`` — cached sorted runs, merged
(single shared col)  vectorised when numpy is available
project ∘ join       fused ``sort-merge-join`` + projection — only the
                     projected columns are gathered and the expansion
                     is deduped vectorised (``np.unique``), so the wide
                     joined intermediate is never materialised; stacked
                     projections compose into one pass
semi-join            ``semi-join`` key-set / ``isin`` kernel, or the
                     int-tuple probe of the hash path
anti-join            ``col-anti-join`` — int-tuple membership probes
adom complement      ``col-adom-complement`` over the encoded domain
===================  ==================================================

Intermediate results are frozensets of ``tuple[int, ...]`` — hashing and
equality run at C speed on small ints instead of through the
Python-level ``Null.__hash__``.  Final answers are decoded back to cell
tuples, so :meth:`ColumnarQuery.answers` is **bit-for-bit equal** to
:meth:`~repro.logic.compile.CompiledQuery.answers` on every formula and
instance (the differential suite in ``tests/test_columnar.py`` pins
this against both the compiled engine and the tree-walking interpreter).

Compilation is stats-aware: :func:`columnar_query` with a source feeds
the instance's bucketed row counts into the compiler's join-ordering
key (:func:`repro.logic.compile._order_cost`), so the smallest relation
seeds each join chain.
"""

from __future__ import annotations

import itertools
from typing import Hashable

from repro.data.dictionary import ColumnarContext, columnar_context
from repro.data.instance import Instance
from repro.logic import kernels
from repro.logic.compile import (
    AntiJoinNode,
    ComplementNode,
    CompiledQuery,
    ConstNode,
    DiagonalNode,
    DomainGuardNode,
    DomainNode,
    FilterNode,
    JoinNode,
    Node,
    ProjectNode,
    ScanNode,
    SingletonNode,
    UnionNode,
    _compiled_with_stats,
    compiled_query,
)

__all__ = [
    "ColumnarQuery",
    "columnar_query",
    "columnar_naive_eval",
    "as_columnar_context",
]

_EMPTY: frozenset[tuple[int, ...]] = frozenset()
_UNIT: frozenset[tuple] = frozenset([()])


def as_columnar_context(source: Instance | ColumnarContext) -> ColumnarContext:
    """Normalise an evaluation source into a :class:`ColumnarContext`."""
    if isinstance(source, ColumnarContext):
        return source
    if isinstance(source, Instance):
        return columnar_context(source)
    raise TypeError(
        f"cannot evaluate over {source!r}: expected Instance or ColumnarContext"
    )


# ----------------------------------------------------------------------
# the executor: one handler per operator, memoised per run
# ----------------------------------------------------------------------

def _eval(node: Node, cctx: ColumnarContext, memo: dict) -> frozenset[tuple[int, ...]]:
    key = id(node)
    if key not in memo:
        memo[key] = _HANDLERS[type(node)](node, cctx, memo)
    return memo[key]


def _const(node, cctx, memo):
    return _UNIT if node.truth else _EMPTY


def _scan(node, cctx, memo):
    rel = cctx.encoded(node.name)
    if rel is None or rel.arity != node.arity:
        # absent relation, or stored under a different arity — the atom
        # matches nothing (mirrors the compiled scan's guard)
        return _EMPTY
    if node.is_plain:
        return rel.row_set()
    if node._const_positions:
        key = cctx.try_encode_key(node._const_key)
        if key is None:
            return _EMPTY  # a never-interned constant occurs in no row
        rows = rel.index(node._const_positions).get(key, ())
    else:
        rows = rel.row_tuples()
    eq, keep = node._eq_checks, node._var_positions
    out = set()
    for row in rows:
        if all(row[i] == row[j] for i, j in eq):
            out.add(tuple(row[p] for p in keep))
    return frozenset(out)


def _domain(node, cctx, memo):
    return frozenset((a,) for a in cctx.adom_codes())


def _diagonal(node, cctx, memo):
    return frozenset((a, a) for a in cctx.adom_codes())


def _singleton(node, cctx, memo):
    # adom_codes() first: it interns the domain, so a constant that IS in
    # the active domain always has a code by the time we probe for it
    adom = cctx.adom_codes()
    code = cctx.dictionary.try_encode(node.value)
    if code is not None and code in adom:
        return frozenset([(code,)])
    return _EMPTY


def _guard(node, cctx, memo):
    if not cctx.adom_codes():
        return _EMPTY
    return _eval(node.child, cctx, memo)


def _vector_probe(node) -> bool:
    """Is this probe join a single-column scan ⋈ scan (kernel shape)?"""
    left = node.left
    return (
        node._probe
        and len(node._l_key) == 1
        and isinstance(left, ScanNode)
        and left.is_plain
    )


def _join(node, cctx, memo):
    lk, rk, extra = node._l_key, node._r_key, node._r_extra

    if node._probe:
        right = node.right
        rrel = cctx.encoded(right.name)
        if rrel is None or rrel.arity != right.arity:
            return _EMPTY
        if _vector_probe(node):
            lrel = cctx.encoded(node.left.name)
            if lrel is not None and lrel.arity == node.left.arity:
                if extra:
                    return kernels.sort_merge_join(lrel, rrel, lk[0], rk[0], extra)
                return kernels.semi_join(lrel, rrel, lk[0], rk[0])
            return _EMPTY
        left_rows = _eval(node.left, cctx, memo)
        if not left_rows:
            return _EMPTY
        idx = rrel.index(rk)
        if not extra:  # semi-join straight off the encoded index
            return frozenset(
                lr for lr in left_rows if tuple(lr[i] for i in lk) in idx
            )
        out = set()
        for lr in left_rows:
            bucket = idx.get(tuple(lr[i] for i in lk))
            if bucket:
                for row in bucket:
                    out.add(lr + tuple(row[i] for i in extra))
        return frozenset(out)

    left_rows = _eval(node.left, cctx, memo)
    if not left_rows:
        return _EMPTY
    right_rows = _eval(node.right, cctx, memo)
    if not right_rows:
        return _EMPTY
    if not extra:  # semi-join on materialised int keys
        keys = {tuple(r[i] for i in rk) for r in right_rows}
        return frozenset(
            lr for lr in left_rows if tuple(lr[i] for i in lk) in keys
        )
    out = set()
    if len(right_rows) <= len(left_rows):
        table: dict[tuple, list[tuple]] = {}
        for r in right_rows:
            table.setdefault(tuple(r[i] for i in rk), []).append(
                tuple(r[i] for i in extra)
            )
        for lr in left_rows:
            bucket = table.get(tuple(lr[i] for i in lk))
            if bucket:
                for tail in bucket:
                    out.add(lr + tail)
    else:
        ltable: dict[tuple, list[tuple]] = {}
        for lr in left_rows:
            ltable.setdefault(tuple(lr[i] for i in lk), []).append(lr)
        for r in right_rows:
            bucket = ltable.get(tuple(r[i] for i in rk))
            if bucket:
                tail = tuple(r[i] for i in extra)
                for lr in bucket:
                    out.add(lr + tail)
    return frozenset(out)


def _anti_join(node, cctx, memo):
    left_rows = _eval(node.left, cctx, memo)
    if not left_rows:
        return _EMPTY
    right_rows = _eval(node.right, cctx, memo)
    if not right_rows:
        return left_rows
    lk = node._l_key
    return frozenset(
        lr for lr in left_rows if tuple(lr[i] for i in lk) not in right_rows
    )


def _filter(node, cctx, memo):
    rows = _eval(node.child, cctx, memo)
    if not rows:
        return _EMPTY
    const_eqs = []
    for i, value in node._const_eqs:
        code = cctx.dictionary.try_encode(value)
        if code is None:
            return _EMPTY  # no row can equal a never-interned constant
        const_eqs.append((i, code))
    ce = node._col_eqs
    return frozenset(
        row
        for row in rows
        if all(row[i] == row[j] for i, j in ce)
        and all(row[i] == c for i, c in const_eqs)
    )


def _project(node, cctx, memo):
    # compose stacked projections (the compiler emits project-of-project
    # chains): one pass over the rows instead of one full materialised
    # intermediate per layer
    indices = node._indices
    child = node.child
    while isinstance(child, ProjectNode):
        inner = child._indices
        indices = tuple(inner[i] for i in indices)
        child = child.child
    # fuse the projection into the sort-merge kernel: many-to-many joins
    # expand and projections collapse, so gathering only the projected
    # columns (and deduping vectorised) skips the wide intermediate
    if isinstance(child, JoinNode) and child._r_extra and _vector_probe(child):
        left, right = child.left, child.right
        lrel = cctx.encoded(left.name)
        rrel = cctx.encoded(right.name)
        if (
            lrel is None
            or lrel.arity != left.arity
            or rrel is None
            or rrel.arity != right.arity
        ):
            return _EMPTY
        return kernels.sort_merge_join_project(
            lrel, rrel, child._l_key[0], child._r_key[0], child._r_extra, indices
        )
    rows = _eval(child, cctx, memo)
    return frozenset(tuple(row[i] for i in indices) for row in rows)


def _union(node, cctx, memo):
    return frozenset().union(*(_eval(p, cctx, memo) for p in node.parts))


def _complement(node, cctx, memo):
    rows = _eval(node.child, cctx, memo)
    if not node.columns:
        return _EMPTY if rows else _UNIT
    domain = tuple(cctx.adom_codes())
    return frozenset(
        row
        for row in itertools.product(domain, repeat=len(node.columns))
        if row not in rows
    )


_HANDLERS = {
    ConstNode: _const,
    ScanNode: _scan,
    DomainNode: _domain,
    DiagonalNode: _diagonal,
    SingletonNode: _singleton,
    DomainGuardNode: _guard,
    JoinNode: _join,
    AntiJoinNode: _anti_join,
    FilterNode: _filter,
    ProjectNode: _project,
    UnionNode: _union,
    ComplementNode: _complement,
}


# ----------------------------------------------------------------------
# EXPLAIN: kernel names and join order
# ----------------------------------------------------------------------

def _kernel_name(node: Node) -> str:
    if isinstance(node, JoinNode) and _vector_probe(node):
        kind = "sort-merge-join" if node._r_extra else "semi-join"
        return f"{kind} [{kernels.kernel_suffix()}]"
    return "col-" + node.label()


def _describe(node: Node, indent: int = 0) -> str:
    cols = ", ".join(c.name for c in node.columns)
    lines = ["  " * indent + f"{_kernel_name(node)} [{cols}]"]
    for child in node.children():
        lines.append(_describe(child, indent + 1))
    return "\n".join(lines)


def _collect_scans(node: Node, out: list[str]) -> None:
    if isinstance(node, ScanNode):
        out.append(node.name)
        return
    for child in node.children():
        _collect_scans(child, out)


# ----------------------------------------------------------------------
# the public face
# ----------------------------------------------------------------------

class ColumnarQuery:
    """A compiled plan bound to the columnar executor.

    Wraps a :class:`~repro.logic.compile.CompiledQuery` (possibly a
    stats-specialised one) and evaluates its DAG over encoded columns.
    ``answers`` decodes back to cell tuples and is bit-for-bit equal to
    the compiled engine's.
    """

    __slots__ = ("cq",)

    def __init__(self, cq: CompiledQuery):
        self.cq = cq

    @property
    def formula(self):
        return self.cq.formula

    @property
    def answer_vars(self):
        return self.cq.answer_vars

    @property
    def relations(self):
        return self.cq.relations

    @property
    def adom_dependent(self):
        return self.cq.adom_dependent

    def raw_codes(self, source) -> frozenset[tuple[int, ...]]:
        """The encoded answer rows (no decoding)."""
        cctx = as_columnar_context(source)
        return _eval(self.cq._root, cctx, {})

    def answers(self, source) -> frozenset[tuple[Hashable, ...]]:
        """Decoded answers — bit-for-bit equal to the compiled engine."""
        cctx = as_columnar_context(source)
        decode = cctx.dictionary.decode_row
        return frozenset(map(decode, _eval(self.cq._root, cctx, {})))

    def naive_answers(self, source) -> frozenset[tuple[Hashable, ...]]:
        """Decoded null-free answers (naive evaluation's step two).

        Null rows are dropped *before* decoding — odd codes are nulls,
        so the parity test replaces the per-cell ``isinstance`` sweep.
        """
        cctx = as_columnar_context(source)
        decode = cctx.dictionary.decode_row
        return frozenset(
            decode(row)
            for row in _eval(self.cq._root, cctx, {})
            if not any(c & 1 for c in row)
        )

    def describe(self) -> str:
        """EXPLAIN-style rendering naming the chosen columnar kernels."""
        return _describe(self.cq._root)

    def join_order(self) -> tuple[str, ...]:
        """Relation names in join-chain (left-deep, in-order) sequence."""
        out: list[str] = []
        _collect_scans(self.cq._root, out)
        return tuple(out)

    def __repr__(self) -> str:
        head = ", ".join(v.name for v in self.answer_vars)
        return f"ColumnarQuery({head or '·'} ← {self.formula!r})"


def columnar_query(query, source=None) -> ColumnarQuery:
    """The columnar compilation of a :class:`~repro.logic.queries.Query`.

    Without a ``source`` this shares the memoised stats-free compilation
    with the compiled engine (identical DAG, columnar kernels).  With a
    ``source`` the instance's bucketed row counts drive the compiler's
    join ordering; the specialised plan is memoised per (query, stats
    bucket), so re-planning across small mutations is free.
    """
    if source is None:
        return ColumnarQuery(compiled_query(query))
    cctx = as_columnar_context(source)
    cq = _compiled_with_stats(query.formula, query.answer_vars, cctx.stats_key())
    return ColumnarQuery(cq)


def columnar_naive_eval(query, instance: Instance) -> frozenset[tuple[Hashable, ...]]:
    """Naive evaluation through the columnar engine (both steps).

    The entry point :func:`repro.core.naive.naive_eval` dispatches here
    for ``engine="columnar"``.
    """
    cctx = columnar_context(instance)
    return columnar_query(query, cctx).naive_answers(cctx)
