"""Predicates over candidate homomorphisms.

These check, rather than search: given a concrete mapping (a dict on the
active domain), classify it as a (database / onto / strong onto)
homomorphism or a valuation in the sense of Sections 2.2–2.3.
"""

from __future__ import annotations

from typing import Hashable, Mapping

from repro.data.instance import Instance
from repro.data.values import Null

__all__ = [
    "image",
    "is_homomorphism",
    "is_database_homomorphism",
    "is_onto",
    "is_strong_onto",
    "is_valuation",
    "fix_set",
]

Assignment = Mapping[Hashable, Hashable]


def image(mapping: Assignment, instance: Instance) -> Instance:
    """The image ``h(D)`` — shorthand for :meth:`Instance.apply`."""
    return instance.apply(mapping)


def is_homomorphism(mapping: Assignment, source: Instance, target: Instance) -> bool:
    """True iff ``mapping`` sends every fact of ``source`` into ``target``.

    Plain homomorphisms: constants are allowed to move.  Values of the
    active domain missing from the mapping are treated as fixed.
    """
    return source.apply(mapping).issubinstance(target)


def is_database_homomorphism(mapping: Assignment, source: Instance, target: Instance) -> bool:
    """A homomorphism that is the identity on every constant of ``source``."""
    if not fixes_constants(mapping, source):
        return False
    return is_homomorphism(mapping, source, target)


def fixes_constants(mapping: Assignment, source: Instance) -> bool:
    """True iff the mapping does not move any constant of ``source``."""
    return all(
        mapping.get(c, c) == c for c in source.constants()
    )


def is_onto(mapping: Assignment, source: Instance, target: Instance) -> bool:
    """Onto homomorphism: ``h(adom(source)) = adom(target)`` (WCWA's class)."""
    if not is_homomorphism(mapping, source, target):
        return False
    hit = {mapping.get(v, v) for v in source.adom()}
    return hit == set(target.adom())


def is_strong_onto(mapping: Assignment, source: Instance, target: Instance) -> bool:
    """Strong onto homomorphism: ``h(source) = target`` exactly (CWA's class)."""
    return source.apply(mapping) == target


def is_valuation(mapping: Assignment, source: Instance) -> bool:
    """A valuation: database homomorphism whose image lies in ``Const``.

    Concretely, it must assign a constant to every null of ``source``
    and not move any constant.
    """
    if not fixes_constants(mapping, source):
        return False
    for null in source.nulls():
        value = mapping.get(null, null)
        if isinstance(value, Null):
            return False
    return True


def fix_set(mapping: Assignment, source: Instance) -> frozenset:
    """``fix(h, D)``: the constants of ``D`` that the mapping leaves in place.

    Used by the minimality machinery of Section 10.2, where mappings
    need not preserve all constants.
    """
    return frozenset(c for c in source.constants() if mapping.get(c, c) == c)
