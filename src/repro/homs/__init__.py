"""Homomorphism machinery: search, classification, minimality, cores."""

from repro.homs.core import core, is_core, retract_step
from repro.homs.minimal import (
    is_d_minimal,
    iter_minimal_valuations,
    minimal_valuation_images,
    some_minimal_valuation,
)
from repro.homs.properties import (
    fix_set,
    image,
    is_database_homomorphism,
    is_homomorphism,
    is_onto,
    is_strong_onto,
    is_valuation,
)
from repro.homs.search import (
    find_homomorphism,
    find_isomorphism,
    has_homomorphism,
    iter_homomorphisms,
    iter_mappings,
)

__all__ = [
    "core",
    "is_core",
    "retract_step",
    "is_d_minimal",
    "iter_minimal_valuations",
    "minimal_valuation_images",
    "some_minimal_valuation",
    "fix_set",
    "image",
    "is_database_homomorphism",
    "is_homomorphism",
    "is_onto",
    "is_strong_onto",
    "is_valuation",
    "find_homomorphism",
    "find_isomorphism",
    "has_homomorphism",
    "iter_homomorphisms",
    "iter_mappings",
]
