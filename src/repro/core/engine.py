"""The evaluation engine: naive when provably sound, enumeration otherwise.

This is the library's front door.  :func:`evaluate` consults the
analyzer (Figure 1), runs naive evaluation when the paper guarantees it
computes certain answers, and otherwise falls back to the bounded
certain-answer oracle — reporting which route was taken and how reliable
the result is.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence

from repro.data.instance import Instance
from repro.homs.core import is_core
from repro.logic.queries import Query
from repro.core.analyzer import Verdict, analyze
from repro.core.certain import certain_answers
from repro.core.naive import naive_eval
from repro.semantics import get_semantics
from repro.semantics.base import Semantics

__all__ = ["EvalResult", "evaluate"]


@dataclass(frozen=True)
class EvalResult:
    """Outcome of an engine evaluation."""

    #: the computed answers (null-free tuples; ``{()}`` = Boolean true)
    answers: frozenset[tuple[Hashable, ...]]
    #: how they were computed: "naive" or "enumeration"
    method: str
    #: True when the result provably equals the certain answers
    exact: bool
    #: for inexact results, the guaranteed containment direction:
    #: "subset" (answers ⊆ certain), "superset", or "" when exact
    direction: str
    #: the analyzer's verdict that routed the evaluation
    verdict: Verdict

    @property
    def holds(self) -> bool:
        """Boolean reading: is the certain answer 'true'?"""
        return bool(self.answers)

    def __repr__(self) -> str:
        status = "exact" if self.exact else f"approx({self.direction})"
        return f"EvalResult({set(self.answers)!r}, method={self.method}, {status})"


def evaluate(
    query: Query,
    instance: Instance,
    semantics: Semantics | str = "cwa",
    mode: str = "auto",
    pool: Sequence[Hashable] | None = None,
    extra_facts: int | None = None,
    limit: int = 500_000,
) -> EvalResult:
    """Compute certain answers to ``query`` on ``instance`` under ``semantics``.

    ``mode``:

    * ``"auto"`` — naive evaluation when the analyzer proves it sound
      (checking the core condition for the minimal semantics),
      otherwise bounded enumeration;
    * ``"naive"`` — force naive evaluation (the result is then certain
      only when the verdict says so);
    * ``"enumeration"`` — force the bounded certain-answer oracle.

    Exactness accounting: naive evaluation under a positive verdict is
    exact; enumeration is exact for all CWA-flavoured semantics and an
    over-approximation (``certain ⊆ answers`` direction ``superset``)
    under OWA, whose extensions are truncated at ``extra_facts``; naive
    evaluation under a *negative-but-approximation* verdict (minimal
    semantics off-core, Prop. 10.13) is a subset of the certain answers.
    """
    sem = get_semantics(semantics) if isinstance(semantics, str) else semantics
    verdict = analyze(query, sem)

    if mode not in ("auto", "naive", "enumeration"):
        raise ValueError(f"unknown mode {mode!r}")

    use_naive: bool
    if mode == "naive":
        use_naive = True
    elif mode == "enumeration":
        use_naive = False
    else:
        use_naive = verdict.sound and (
            not verdict.over_cores_only or is_core(instance)
        )

    if use_naive:
        answers = naive_eval(query, instance)
        exact = verdict.sound and (not verdict.over_cores_only or is_core(instance))
        direction = "" if exact else ("subset" if verdict.approximation else "unknown")
        return EvalResult(answers, "naive", exact, direction, verdict)

    answers = certain_answers(
        query, instance, sem, pool=pool, extra_facts=extra_facts, limit=limit
    )
    exact = sem.enumeration_exact(extra_facts)
    direction = "" if exact else "superset"
    return EvalResult(answers, "enumeration", exact, direction, verdict)
