"""Property-based tests linking CQ machinery, logic evaluation, and cores."""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algebra.cq import CQ
from repro.data.instance import Instance
from repro.data.values import Null
from repro.logic.ast import Var
from repro.logic.eval import answers

x, y, z = Var("x"), Var("y"), Var("z")

values = st.one_of(
    st.integers(min_value=1, max_value=3),
    st.builds(Null, st.sampled_from(["a", "b"])),
)
pairs = st.tuples(values, values)


@st.composite
def instances(draw, max_facts=4):
    rows = [draw(pairs) for _ in range(draw(st.integers(1, max_facts)))]
    return Instance({"R": rows})


@st.composite
def cqs(draw):
    """Random binary-head CQs over R with up to 3 atoms."""
    variables = [x, y, z]
    n_atoms = draw(st.integers(1, 3))
    body = tuple(
        ("R", (draw(st.sampled_from(variables)), draw(st.sampled_from(variables))))
        for _ in range(n_atoms)
    )
    body_vars = [t for _, terms in body for t in terms]
    head = (draw(st.sampled_from(body_vars)),)
    return CQ(head, body)


@given(cqs(), instances())
@settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_cq_evaluation_agrees_with_logic(cq, instance):
    """Join-based CQ evaluation equals FO evaluation of the translation."""
    head_vars = tuple(t for t in cq.head if isinstance(t, Var))
    got = cq.answers(instance)
    want = answers(cq.to_formula(), instance, head_vars)
    assert got == want


@given(cqs())
@settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_minimize_preserves_equivalence(cq):
    small = cq.minimize()
    assert small.equivalent_to(cq)
    assert len(small.body) <= len(cq.body)


@given(cqs())
@settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_minimize_idempotent_in_size(cq):
    once = cq.minimize()
    twice = once.minimize()
    assert len(twice.body) == len(once.body)


@given(cqs(), instances())
@settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_minimized_cq_same_answers(cq, instance):
    assert cq.minimize().answers(instance) == cq.answers(instance)


@given(cqs(), cqs())
@settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_containment_implies_answer_containment(cq1, cq2):
    """Chandra–Merlin soundness: cq1 ⊆ cq2 ⇒ answers(cq1) ⊆ answers(cq2)."""
    if len(cq1.head) != len(cq2.head):
        return
    if cq1.contained_in(cq2):
        rng = random.Random(0)
        for _ in range(3):
            rows = [
                (rng.randint(1, 3), rng.randint(1, 3)) for _ in range(rng.randint(1, 4))
            ]
            instance = Instance({"R": rows})
            assert cq1.answers(instance) <= cq2.answers(instance)


@given(cqs())
@settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_containment_reflexive(cq):
    assert cq.contained_in(cq)
