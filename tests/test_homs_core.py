"""Unit tests for repro.homs.core: cores and retractions (Section 10.1)."""

from repro.data.generate import cycle, disjoint_union, path
from repro.data.instance import Instance
from repro.data.values import Null
from repro.homs.core import core, is_core, retract_step

X, Y = Null("x"), Null("y")


class TestIsCore:
    def test_single_fact_is_core(self):
        assert is_core(Instance({"R": [(1, 2)]}))

    def test_complete_instances_are_cores(self):
        # database homs fix constants, so no complete instance retracts
        assert is_core(Instance({"R": [(1, 2), (2, 3), (1, 1)]}))

    def test_redundant_null_fact_not_core(self):
        d = Instance({"R": [(1, 2), (1, X)]})
        assert not is_core(d)

    def test_cycles_are_cores(self):
        for n in (2, 3, 4, 5, 6):
            assert is_core(cycle(n), fix_constants=False)

    def test_even_cycle_pairs_are_not_cores(self):
        g = disjoint_union(cycle(4), cycle(6, [Null(f"b{i}") for i in range(6)]))
        # C4 + C6 maps onto C2?  No — but C4+C6 has no retraction to a
        # proper subinstance either, so it IS a core (paper Prop. 10.1).
        assert is_core(g, fix_constants=False)

    def test_c3_plus_c6_is_not_core(self):
        g = disjoint_union(cycle(3), cycle(6, [Null(f"b{i}") for i in range(6)]))
        # C6 retracts onto C3 inside the union.
        assert not is_core(g, fix_constants=False)


class TestCoreComputation:
    def test_paper_example_core(self):
        # core({(⊥,⊥), (⊥,⊥')}) = {(⊥,⊥)} (Section 10.2 remark)
        d = Instance({"D": [(X, X), (X, Y)]})
        c = core(d)
        assert c == Instance({"D": [(X, X)]})

    def test_core_is_idempotent(self):
        d = Instance({"R": [(1, X), (1, Y), (Y, 2)]})
        c = core(d)
        assert core(c) == c
        assert is_core(c)

    def test_core_is_subinstance(self):
        d = Instance({"R": [(1, X), (1, 2), (Y, 2)]})
        assert core(d) <= d

    def test_directed_paths_are_cores(self):
        # directed paths admit no retraction to a proper subinstance
        p = path(3)
        assert is_core(p, fix_constants=False)
        assert core(p, fix_constants=False) == p

    def test_loop_absorbs_pendant_edge(self):
        # {E(x,x), E(x,y)} retracts onto the loop {E(x,x)}
        d = Instance({"E": [(X, X), (X, Y)]})
        assert core(d, fix_constants=False) == Instance({"E": [(X, X)]})

    def test_core_preserves_constants(self):
        d = Instance({"R": [(1, 2), (1, X)]})
        c = core(d)
        assert c == Instance({"R": [(1, 2)]})

    def test_core_unique_up_to_isomorphism(self):
        d = Instance({"R": [(X, Y), (Y, X), (Null("z"), Null("w"))]})
        c1 = core(d)
        # recompute from a renamed copy
        renamed, _ = d.with_fresh_values(d.nulls(), iter(Null(f"r{i}") for i in range(9)).__next__)
        c2 = core(renamed)
        assert c1.isomorphic(c2)

    def test_retract_step_returns_smaller_or_none(self):
        d = Instance({"R": [(1, X), (1, 2)]})
        smaller = retract_step(d)
        assert smaller is not None
        assert smaller.fact_count() < d.fact_count()
        assert retract_step(Instance({"R": [(1, 2)]})) is None

    def test_clique_core_of_bipartite_like(self):
        # K2 (a 2-cycle both ways = C2) absorbs any even cycle
        g = disjoint_union(cycle(2, [Null("u"), Null("v")]), cycle(4))
        c = core(g, fix_constants=False)
        assert c.fact_count() == 2
