"""Informativeness-increasing updates and their closures (Sections 6–7).

The paper justifies the semantic orderings by *updates* that make an
instance more informative:

* CWA update    ``D ֌ D[v/⊥]`` — replace a null everywhere;
* OWA update    ``D ֌ D ∪ R(t)`` — add a tuple;
* copying CWA update ``D ֌ D[v/⊥] ∪ D^fresh`` — substitute *and* keep a
  copy of the original with all-fresh nulls (Section 7): tuples may be
  added, but only ones that mimic the original database.

Theorem 6.2: the reflexive-transitive closure of CWA updates is
``≼_CWA``, and of CWA+OWA updates is ``≼_OWA``.  Theorem 7.1: the
closure of CWA+copying updates is ``⋐_CWA``.

Exact reachability search is explosive (copying updates even mint fresh
nulls), so :func:`reachable` performs a bounded BFS: substitution values
come from the *target's* values (by the theorems' proofs this suffices
whenever the ordering holds), states are deduplicated up to a canonical
null renaming, and null/fact counts are capped.
"""

from __future__ import annotations

from typing import Hashable, Iterator, Sequence

from repro.data.instance import Instance
from repro.data.values import Null, NullFactory, sort_key

__all__ = [
    "cwa_update",
    "copying_update",
    "owa_update",
    "iter_cwa_updates",
    "iter_copying_updates",
    "iter_owa_updates",
    "canonical_nulls",
    "reachable",
]


def cwa_update(instance: Instance, null: Null, value: Hashable) -> Instance:
    """``D[v/⊥]``: replace every occurrence of ``null`` by ``value``."""
    return instance.apply({null: value})


def copying_update(
    instance: Instance,
    null: Null,
    value: Hashable,
    factory: NullFactory | None = None,
) -> Instance:
    """``D[v/⊥] ∪ D^fresh``: substitute, keeping an all-fresh copy of ``D``."""
    factory = factory or NullFactory("cp")
    fresh_copy, _ = instance.with_fresh_values(instance.nulls(), factory.fresh)
    return instance.apply({null: value}).union(fresh_copy)


def owa_update(instance: Instance, name: str, row: tuple) -> Instance:
    """``D ∪ R(t)``: add one tuple."""
    return instance.add_fact(name, row)


def iter_cwa_updates(
    instance: Instance, values: Sequence[Hashable]
) -> Iterator[Instance]:
    """All single CWA update results with substitution values in ``values``."""
    for null in sorted(instance.nulls(), key=sort_key):
        for value in values:
            if value != null:
                yield cwa_update(instance, null, value)


def iter_copying_updates(
    instance: Instance, values: Sequence[Hashable]
) -> Iterator[Instance]:
    """All single copying updates with substitution values in ``values``."""
    factory = NullFactory("cp")
    for null in sorted(instance.nulls(), key=sort_key):
        for value in values:
            if value != null:
                yield copying_update(instance, null, value, factory)


def iter_owa_updates(
    instance: Instance, values: Sequence[Hashable], schema=None
) -> Iterator[Instance]:
    """All single-tuple additions over ``values`` and the instance's schema."""
    from itertools import product

    schema = schema or instance.schema()
    for name in schema.relations:
        for row in product(values, repeat=schema.arity(name)):
            if row not in instance.tuples(name):
                yield owa_update(instance, name, row)


def canonical_nulls(instance: Instance) -> Instance:
    """Rename nulls to ``⊥#0, ⊥#1, …`` by first occurrence in sorted fact order.

    A cheap canonical form used to deduplicate BFS states that differ
    only in the labels of (fresh) nulls.  It is order-heuristic rather
    than a true graph canonisation, which only costs occasional
    duplicate states — never wrong answers.
    """
    mapping: dict[Null, Null] = {}
    for _name, row in instance.facts():
        for value in row:
            if isinstance(value, Null) and value not in mapping:
                mapping[value] = Null(f"#{len(mapping)}")
    return instance.apply(mapping)


def reachable(
    source: Instance,
    target: Instance,
    kinds: Sequence[str] = ("cwa",),
    max_steps: int | None = None,
    max_frontier: int = 50_000,
    max_nulls: int | None = None,
) -> bool:
    """Is ``target`` reachable from ``source`` by updates of the given kinds?

    ``kinds`` ⊆ {"cwa", "owa", "copying"}.  Substitution/addition values
    are drawn from ``adom(target)``; the BFS is bounded by ``max_steps``
    (default: a budget sufficient for the theorems' constructions),
    ``max_frontier`` states, and — for copying updates, which mint fresh
    nulls — ``max_nulls`` per state.  States are deduplicated up to the
    canonical null renaming.
    """
    for kind in kinds:
        if kind not in ("cwa", "owa", "copying"):
            raise ValueError(f"unknown update kind {kind!r}")
    if max_steps is None:
        max_steps = 2 * len(source.nulls()) + target.fact_count() + 2
    if max_nulls is None:
        max_nulls = max(2 * len(source.nulls()), len(source.nulls()) + 2)
    max_facts = 2 * max(target.fact_count(), source.fact_count())

    goal = canonical_nulls(target)
    # Substitution values: the (canonical) target's values.  Each state
    # additionally offers its own nulls, so null-merging steps like
    # D[⊥x/⊥y] are available regardless of canonical relabelling.
    goal_values = sorted(goal.adom(), key=sort_key)

    def admissible(state: Instance) -> bool:
        if len(state.nulls()) > max_nulls or state.fact_count() > max_facts:
            return False
        return state.constants() <= (target.constants() | source.constants())

    start = canonical_nulls(source)
    frontier = {start}
    seen = {start}
    if start == goal:
        return True
    for _ in range(max_steps):
        next_frontier: set[Instance] = set()
        for current in frontier:
            values = goal_values + sorted(current.nulls() - set(goal_values), key=sort_key)
            streams: list[Iterator[Instance]] = []
            if "cwa" in kinds:
                streams.append(iter_cwa_updates(current, values))
            if "copying" in kinds:
                streams.append(iter_copying_updates(current, values))
            if "owa" in kinds:
                streams.append(iter_owa_updates(current, values, schema=target.schema()))
            for stream in streams:
                for updated in stream:
                    state = canonical_nulls(updated)
                    if state == goal:
                        return True
                    if state in seen or not admissible(state):
                        continue
                    seen.add(state)
                    next_frontier.add(state)
                    if len(seen) > max_frontier:
                        raise RuntimeError(
                            "update reachability search exceeded the frontier bound"
                        )
        if not next_frontier:
            break
        frontier = next_frontier
    return False
