"""Tests for repro.core.certain: the bounded certain-answer oracle."""

import pytest

from repro.core.certain import certain_answers, certain_holds, default_pool, query_schema
from repro.data.instance import Instance
from repro.data.values import Null
from repro.logic.parser import parse
from repro.logic.queries import Query
from repro.semantics import get_semantics

X, Y = Null("x"), Null("y")
K, K1 = Null(""), Null("'")


class TestDefaultPool:
    def test_contains_instance_and_query_constants(self):
        d = Instance({"R": [(1, X)]})
        q = Query.boolean(parse("exists v . R(v, 7)"))
        pool = default_pool(d, q)
        assert 1 in pool and 7 in pool

    def test_fresh_count(self):
        d = Instance({"R": [(X, Y)]})
        pool = default_pool(d)
        fresh = [v for v in pool if isinstance(v, str) and v.startswith("_f")]
        assert len(fresh) == 3  # nulls + 1

    def test_fresh_avoid_collisions(self):
        d = Instance({"R": [("_f1", X)]})
        pool = default_pool(d)
        assert len(set(pool)) == len(pool)

    def test_n_fresh_override(self):
        d = Instance({"R": [(X, Y)]})
        assert len(default_pool(d, n_fresh=0)) == 0

    def test_extra_constants_widen_the_pool(self):
        d = Instance({"R": [(1, X)]})
        pool = default_pool(d, extra_constants={41, 42})
        assert 41 in pool and 42 in pool

    # ------------------------------------------------------------------
    # regression: pool order must be deterministic and type-stable
    # (sorting by repr interleaved int and str constants — repr("0") is
    # "'0'" which sorts before repr(1) == "1" — so enumeration order and
    # limit truncation depended on the cell types)
    # ------------------------------------------------------------------

    def test_pool_order_is_type_stable(self):
        d = Instance({"R": [(2, "0"), ("10", 1)]})
        pool = default_pool(d, n_fresh=0)
        # all ints come before all strs: grouped by type, never interleaved
        assert pool == [1, 2, "0", "10"]

    def test_pool_order_independent_of_construction_order(self):
        rows = [(2, "0"), ("10", 1), (X, "b"), ("a", Y)]
        d1 = Instance({"R": rows})
        d2 = Instance({"R": list(reversed(rows))})
        assert d1 == d2
        assert default_pool(d1) == default_pool(d2)

    def test_pool_is_repeatable(self):
        d = Instance({"R": [(1, "one"), (2, X), ("two", Y)]})
        q = Query.boolean(parse("exists v . R(v, 3)"))
        assert default_pool(d, q) == default_pool(d, q)

    def test_mixed_type_enumeration_answers_unchanged(self):
        # sanity: the reordering does not change what is certain
        d = Instance({"R": [(1, X), ("a", X)]})
        q = Query.boolean(parse("exists v . R(1, v) & R('a', v)"))
        assert certain_holds(q, d, get_semantics("cwa"))


class TestQuerySchema:
    def test_collects_arities(self):
        q = Query.boolean(parse("exists v . R(v, v) & S(v)"))
        s = query_schema(q)
        assert s.arity("R") == 2 and s.arity("S") == 1

    def test_memoised_per_query_value(self):
        q = Query.boolean(parse("exists v . R(v, v) & S(v)"))
        same = Query.boolean(parse("exists v . R(v, v) & S(v)"))
        assert query_schema(q) is query_schema(same)

    def test_conflicting_arity_raises(self):
        q = Query.boolean(parse("exists v . R(v) & R(v, v)"))
        with pytest.raises(ValueError):
            query_schema(q)


class TestCertainAnswers:
    def test_intro_example_all_semantics(self, join_query, intro_db):
        for key in ("owa", "cwa", "wcwa", "pcwa", "mincwa", "minpcwa"):
            kw = {"extra_facts": 1} if key == "wcwa" else {}
            got = certain_answers(join_query, intro_db, get_semantics(key), **kw)
            assert got == frozenset({(1, 4)}), key

    def test_d0_forall_split(self, d0, forall_exists_query):
        # ∀x∃y D(x,y): certain under CWA/WCWA, not under OWA (Section 2.4)
        assert not certain_holds(forall_exists_query, d0, get_semantics("owa"))
        assert certain_holds(forall_exists_query, d0, get_semantics("cwa"))
        assert certain_holds(forall_exists_query, d0, get_semantics("wcwa"))

    def test_d0_exists_cycle_everywhere(self, d0, exists_cycle_query):
        for key in ("owa", "cwa", "wcwa", "pcwa"):
            assert certain_holds(exists_cycle_query, d0, get_semantics(key)), key

    def test_negative_query_under_cwa(self):
        # ¬∃v R(v,v) on {R(1,⊥)}: some valuation sets ⊥=1 → not certain
        d = Instance({"R": [(1, X)]})
        q = Query.boolean(parse("!(exists v . R(v, v))"))
        assert not certain_holds(q, d, get_semantics("cwa"))

    def test_negative_query_certain_when_unreachable(self):
        # ¬R(2,2) on {R(1,⊥)}: no valuation creates (2,2) under CWA
        d = Instance({"R": [(1, X)]})
        q = Query.boolean(parse("!R(2, 2)"))
        assert certain_holds(q, d, get_semantics("cwa"))
        # ... but under OWA extensions may add it
        assert not certain_holds(q, d, get_semantics("owa"))

    def test_kary_certain_answer_with_constants(self):
        d = Instance({"R": [(1, 2), (3, X)]})
        q = Query(parse("R(a, b)"), ("a", "b"))
        got = certain_answers(q, d, get_semantics("cwa"))
        assert got == frozenset({(1, 2)})

    def test_certain_empty_when_all_null(self):
        d = Instance({"R": [(X, Y)]})
        q = Query(parse("R(a, b)"), ("a", "b"))
        assert certain_answers(q, d, get_semantics("cwa")) == frozenset()

    def test_complete_instance_certain_equals_eval(self):
        d = Instance({"R": [(1, 2)]})
        q = Query(parse("R(a, b)"), ("a", "b"))
        assert certain_answers(q, d, get_semantics("cwa")) == frozenset({(1, 2)})

    def test_certain_holds_rejects_kary(self):
        q = Query(parse("R(a, b)"), ("a", "b"))
        with pytest.raises(ValueError):
            certain_holds(q, Instance.empty(), get_semantics("cwa"))

    def test_minimal_semantics_forall_example(self):
        """The Cor 10.11 remark: certain answer to ∀x D(x,x) under
        [[·]]^min_CWA on {(⊥,⊥),(⊥,⊥')} is TRUE (minimal valuations
        collapse the nulls) although naive evaluation returns false."""
        d = Instance({"D": [(X, X), (X, Y)]})
        q = Query.boolean(parse("forall v . D(v, v)"))
        assert certain_holds(q, d, get_semantics("mincwa"))
        assert not certain_holds(q, d, get_semantics("cwa"))
