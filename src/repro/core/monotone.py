"""Empirical checkers for (weak) monotonicity and homomorphism preservation.

The paper's main equivalences (Theorems 3.1, 4.8; Lemmas 8.1, 11.1) link
naive evaluation, weak monotonicity and preservation under the
semantics' homomorphism class.  These checkers validate instances of
those equivalences on concrete corpora — they *search for
counterexamples* and report the first one found, so a ``None`` result
means "no counterexample in the corpus", not a proof.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable

from repro.data.instance import Instance
from repro.homs.minimal import is_d_minimal
from repro.homs.search import iter_homomorphisms
from repro.logic.queries import Query
from repro.core.certain import default_pool, query_schema
from repro.core.naive import naive_eval
from repro.semantics.base import Semantics

__all__ = [
    "Counterexample",
    "weak_monotonicity_counterexample",
    "preservation_counterexample",
    "HOM_CLASSES",
]


@dataclass(frozen=True)
class Counterexample:
    """A witness that a property fails: the instances and the lost answer."""

    source: Instance
    target: Instance
    lost: tuple[Hashable, ...]
    detail: str = ""

    def __repr__(self) -> str:
        return (
            f"Counterexample(lost {self.lost!r} going from {self.source!r} "
            f"to {self.target!r}{'; ' + self.detail if self.detail else ''})"
        )


def weak_monotonicity_counterexample(
    query: Query,
    instances: Iterable[Instance],
    semantics: Semantics,
    extra_facts: int | None = 1,
    limit: int = 200_000,
) -> Counterexample | None:
    """Search ``y ∈ [[x]]`` pairs violating ``Q^C(x) ⊆ Q^C(y)``.

    This is the k-ary weak monotonicity of Section 8 (for Boolean
    queries it degenerates to ``Q(x) ≤ Q(y)``).
    """
    for instance in instances:
        held = naive_eval(query, instance)
        if not held:
            continue
        pool = default_pool(instance, query)
        schema = instance.schema().union(query_schema(query))
        for complete in semantics.expand(
            instance, pool, schema=schema, extra_facts=extra_facts, limit=limit
        ):
            there = query.eval_raw(complete)
            missing = held - there
            if missing:
                return Counterexample(
                    instance, complete, next(iter(missing)),
                    detail=f"under {semantics.notation}",
                )
    return None


def _iter_class_homs(source: Instance, target: Instance, hom_class: str):
    """Enumerate the homomorphisms of the named class between complete instances."""
    if hom_class == "hom":
        yield from iter_homomorphisms(source, target, fix_constants=True)
    elif hom_class == "onto":
        yield from iter_homomorphisms(source, target, fix_constants=True, onto=True)
    elif hom_class == "strong_onto":
        yield from iter_homomorphisms(source, target, fix_constants=True, strong_onto=True)
    elif hom_class == "minimal":
        for hom in iter_homomorphisms(source, target, fix_constants=True, strong_onto=True):
            if is_d_minimal(source, hom, mode="mapping"):
                yield hom
    else:
        raise ValueError(f"unknown homomorphism class {hom_class!r}")


#: classes accepted by :func:`preservation_counterexample`, as in Cor. 4.9 / Prop. 10.7
HOM_CLASSES = ("hom", "onto", "strong_onto", "minimal")


def preservation_counterexample(
    query: Query,
    pairs: Iterable[tuple[Instance, Instance]],
    hom_class: str,
) -> Counterexample | None:
    """Search instance pairs and homs of the class violating preservation.

    Uses the *weak preservation* notion of Sections 8/11 for k-ary
    queries: the homomorphism must be the identity on the answer tuple.
    """
    if hom_class not in HOM_CLASSES:
        raise ValueError(f"unknown homomorphism class {hom_class!r}; expected one of {HOM_CLASSES}")
    for source, target in pairs:
        held = naive_eval(query, source)
        if not held:
            continue
        for hom in _iter_class_homs(source, target, hom_class):
            there = query.eval_raw(target)
            for row in held:
                if any(hom.get(v, v) != v for v in row):
                    continue  # weak preservation only constrains fixed tuples
                if row not in there:
                    return Counterexample(
                        source, target, row, detail=f"under {hom_class} homomorphism {hom}"
                    )
    return None
