"""Unit tests for repro.logic.queries: the Query wrapper."""

import pytest

from repro.data.instance import Instance
from repro.data.values import Null
from repro.logic.ast import Var
from repro.logic.parser import parse
from repro.logic.queries import Query

X = Null("x")


class TestConstruction:
    def test_answer_vars_must_cover_free_vars(self):
        with pytest.raises(ValueError):
            Query(parse("R(x, y)"), ("x",))

    def test_answer_vars_must_be_free(self):
        with pytest.raises(ValueError):
            Query(parse("exists y (R(x, y))"), ("x", "y"))

    def test_answer_vars_must_be_distinct(self):
        with pytest.raises(ValueError):
            Query(parse("R(x, x)"), ("x", "x"))

    def test_strings_coerced_to_vars(self):
        q = Query(parse("R(x, y)"), ("x", "y"))
        assert q.answer_vars == (Var("x"), Var("y"))

    def test_boolean_constructor(self):
        q = Query.boolean(parse("exists x (R(x, x))"))
        assert q.is_boolean and q.arity == 0

    def test_boolean_rejects_free_vars(self):
        with pytest.raises(ValueError):
            Query.boolean(parse("R(x, x)"))


class TestEvaluation:
    def test_eval_raw_kary(self):
        d = Instance({"R": [(1, X)]})
        q = Query(parse("R(a, b)"), ("a", "b"))
        assert q.eval_raw(d) == frozenset({(1, X)})

    def test_eval_raw_boolean_encoding(self):
        d = Instance({"R": [(1, 1)]})
        q = Query.boolean(parse("exists v (R(v, v))"))
        assert q.eval_raw(d) == frozenset({()})
        assert q.eval_raw(Instance.empty()) == frozenset()

    def test_holds_only_for_boolean(self):
        q = Query(parse("R(a, b)"), ("a", "b"))
        with pytest.raises(ValueError):
            q.holds(Instance.empty())


class TestMetadata:
    def test_constants(self):
        q = Query.boolean(parse("exists v (R(v, 7) & v = 'joe')"))
        assert q.constants() == frozenset({7, "joe"})

    def test_fragments(self):
        q = Query.boolean(parse("exists v (R(v, v))"))
        assert "EPos" in q.fragments()
        q2 = Query.boolean(parse("!(exists v (R(v, v)))"))
        assert q2.fragments() == ("FO",)

    def test_repr_mentions_name_and_head(self):
        q = Query(parse("R(a, b)"), ("a", "b"), name="edges")
        assert "edges" in repr(q) and "a, b" in repr(q)
