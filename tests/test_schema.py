"""Unit tests for repro.data.schema."""

import pytest

from repro.data.schema import Schema, SchemaError


class TestConstruction:
    def test_basic(self):
        s = Schema({"R": 2, "S": 1})
        assert s.arity("R") == 2
        assert s.arity("S") == 1
        assert len(s) == 2

    def test_relations_sorted(self):
        s = Schema({"Z": 1, "A": 2})
        assert s.relations == ("A", "Z")

    def test_rejects_bad_arity(self):
        with pytest.raises(SchemaError):
            Schema({"R": 0})
        with pytest.raises(SchemaError):
            Schema({"R": -1})
        with pytest.raises(SchemaError):
            Schema({"R": "two"})

    def test_rejects_bad_name(self):
        with pytest.raises(SchemaError):
            Schema({"": 1})
        with pytest.raises(SchemaError):
            Schema({3: 1})

    def test_unknown_relation_raises(self):
        with pytest.raises(SchemaError):
            Schema({"R": 1}).arity("S")


class TestOperations:
    def test_contains_and_iter(self):
        s = Schema({"R": 2})
        assert "R" in s
        assert "S" not in s
        assert list(s) == ["R"]

    def test_equality_and_hash(self):
        assert Schema({"R": 2}) == Schema({"R": 2})
        assert Schema({"R": 2}) != Schema({"R": 3})
        assert hash(Schema({"R": 2})) == hash(Schema({"R": 2}))

    def test_union_merges(self):
        merged = Schema({"R": 2}).union(Schema({"S": 3}))
        assert merged == Schema({"R": 2, "S": 3})

    def test_union_conflict_raises(self):
        with pytest.raises(SchemaError):
            Schema({"R": 2}).union(Schema({"R": 3}))

    def test_union_idempotent_on_agreement(self):
        s = Schema({"R": 2})
        assert s.union(s) == s

    def test_graph_helper(self):
        assert Schema.graph() == Schema({"E": 2})
        assert Schema.graph("Edge") == Schema({"Edge": 2})

    def test_repr_mentions_arities(self):
        assert "R/2" in repr(Schema({"R": 2}))
