"""Session-oriented public API: the :class:`Database` facade.

A :class:`Database` wraps one incomplete :class:`~repro.data.instance.Instance`
together with a default semantics and turns the paper's
analyze-then-route insight into a *prepared-query* workflow:

>>> from repro.session import Database
>>> from repro.data.values import Null
>>> db = Database({"R": [(1, Null("x"))], "S": [(Null("x"), 4)]}, semantics="owa")
>>> q = db.query("exists z (R(x, z) & S(z, y))", vars=("x", "y"))
>>> sorted(q.evaluate().answers)
[(1, 4)]
>>> db.explain(q).backend
'compiled'

Preparing a query pays for the Figure-1 analyzer, the parse, the query
schema and the constant pool exactly once; subsequent evaluations reuse
the cached :class:`~repro.core.plan.Plan`.  The instance-dependent
caches (pool, core check, plans) are keyed by a generation counter that
mutation methods bump, so ``db.add_fact(...)`` transparently
invalidates every prepared query.  Evaluation itself is delegated to
the pluggable backend registry (:mod:`repro.core.backends`).

Module-level functions are called through their module objects
(``_certain.default_pool`` and friends) so tests and instrumentation
can monkeypatch the defining module and observe every call.
"""

from __future__ import annotations

from time import perf_counter
from typing import Hashable, Iterable, Mapping, Sequence

from repro.core import analyzer as _analyzer
from repro.core import backends as _backends
from repro.core import certain as _certain
from repro.core import engine as _engine
from repro.core import plan as _plan
from repro.core.engine import EvalResult
from repro.core.plan import Plan
from importlib import import_module

from repro.data.instance import Instance
from repro.data.schema import Schema

# repro.homs re-exports a `core` *function* that shadows the submodule
# attribute, so the module object must come from the import system.
_homs_core = import_module("repro.homs.core")
from repro.logic.ast import Formula
from repro.logic.parser import parse
from repro.logic.queries import Query
from repro.logic.transform import free_vars
from repro.semantics import get_semantics
from repro.semantics.base import Semantics

__all__ = ["Database", "PreparedQuery", "as_query"]


def as_query(source, vars=None, name: str | None = None) -> Query:
    """Normalise a query source (text, formula, or Query) into a Query.

    The single source of truth for the default answer-column convention
    (free variables in name order) shared by the session API and the CLI.
    """
    if isinstance(source, Query):
        if vars is not None:
            raise ValueError("vars cannot be overridden for an already-built Query")
        if name is not None:
            raise ValueError("name cannot be overridden for an already-built Query")
        return source
    formula = parse(source) if isinstance(source, str) else source
    if not isinstance(formula, Formula):
        raise TypeError(
            f"cannot prepare {source!r}: expected query text, a Formula, or a Query"
        )
    if vars is None:
        head = tuple(sorted(free_vars(formula), key=lambda v: v.name))
    else:
        head = tuple(vars)
    return Query(formula, head, name=name or "Q")


class PreparedQuery:
    """A query bound to a :class:`Database`, with its analysis cached.

    Caches, computed at most once per (query, semantics):

    * the parsed :class:`~repro.logic.queries.Query` (AST + answer tuple),
    * the analyzer verdict (Figure 1),
    * the query schema (relations/arities the query mentions);

    and at most once per *instance generation*:

    * the constant pool for bounded enumeration,
    * the :class:`~repro.core.plan.Plan` per requested mode.
    """

    __slots__ = (
        "_db",
        "query",
        "semantics",
        "_verdict",
        "_schema",
        "_pool",
        "_pool_generation",
        "_plans",
        "_plans_generation",
    )

    def __init__(self, db: "Database", query: Query, semantics: Semantics):
        self._db = db
        self.query = query
        self.semantics = semantics
        self._verdict = None
        self._schema: Schema | None = None
        self._pool: tuple[Hashable, ...] | None = None
        self._pool_generation = -1
        self._plans: dict[str, Plan] = {}
        self._plans_generation = -1

    # ------------------------------------------------------------------
    # cached analysis
    # ------------------------------------------------------------------

    @property
    def database(self) -> "Database":
        return self._db

    @property
    def verdict(self):
        """The Figure-1 verdict for this (query, semantics) pair (cached)."""
        if self._verdict is None:
            self._verdict = _analyzer.analyze(self.query, self.semantics)
        return self._verdict

    @property
    def schema(self) -> Schema:
        """The schema mentioned by the query (cached)."""
        if self._schema is None:
            self._schema = _certain.query_schema(self.query)
        return self._schema

    @property
    def pool(self) -> tuple[Hashable, ...]:
        """The enumeration pool for the current instance (cached per generation).

        Returned as a tuple: the cache is shared across evaluations, so
        handing out a mutable alias would let callers corrupt it.
        """
        if self._pool_generation != self._db.generation:
            self._pool = tuple(_certain.default_pool(self._db.instance, self.query))
            self._pool_generation = self._db.generation
        return self._pool

    def plan(self, mode: str = "auto") -> Plan:
        """The evaluation plan (cached per instance generation and mode)."""
        if self._plans_generation != self._db.generation:
            self._plans.clear()
            self._plans_generation = self._db.generation
        cached = self._plans.get(mode)
        if cached is None:
            # no pool is passed: make_plan derives the cost hint
            # arithmetically, and the pool is only materialised at
            # evaluation time for backends that actually read it
            cached = _plan.make_plan(
                self.query,
                self._db.instance,
                self.semantics,
                mode,
                verdict=self.verdict,
                core_check=self._db.instance_is_core,
                extra_facts=self._db.extra_facts,
                workers=self._db.workers,
            )
            self._plans[mode] = cached
        return cached

    explain = plan

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------

    def evaluate(self, mode: str = "auto") -> EvalResult:
        """Evaluate against the session's current instance via the cached plan."""
        start = perf_counter()
        plan = self.plan(mode)
        pool = self.pool if _backends.get_backend(plan.backend).uses_pool else None
        planning = perf_counter() - start
        return _engine.execute_plan(
            plan,
            self.query,
            self._db.instance,
            self.semantics,
            pool=pool,
            extra_facts=self._db.extra_facts,
            limit=self._db.limit,
            workers=self._db.workers,
            stats={
                "planning_s": planning,
                # the pool actually materialised for this run (0 = none:
                # the backend does not enumerate)
                "pool_size": len(pool) if pool is not None else 0,
                "generation": self._db.generation,
            },
        )

    def __call__(self, mode: str = "auto") -> EvalResult:
        return self.evaluate(mode)

    def __repr__(self) -> str:
        return (
            f"PreparedQuery({self.query!r}, semantics={self.semantics.key!r}, "
            f"db_generation={self._db.generation})"
        )


class Database:
    """A stateful session over one incomplete instance.

    Parameters
    ----------
    instance:
        the incomplete database — an :class:`Instance` or a plain
        ``{relation: rows}`` mapping (defaults to the empty instance);
    semantics:
        default semantics for prepared queries (key or object);
    extra_facts / limit:
        enumeration knobs forwarded to the oracle backends;
    workers:
        ceiling on worker processes for the oracle's parallel world
        sharding (0/None = serial; the planner's cost model still
        routes small valuation spaces to the serial path);
    prepared_cache_size:
        bound on the LRU intern table for textual queries.

    The instance is an immutable value; "mutations" (:meth:`add_fact`,
    :meth:`remove_fact`, :meth:`replace`) swap it for a new value and
    bump :attr:`generation`, which lazily invalidates the pools, plans
    and core-check verdicts cached by prepared queries.
    """

    def __init__(
        self,
        instance: Instance | Mapping[str, Iterable[tuple]] | None = None,
        semantics: Semantics | str = "cwa",
        *,
        extra_facts: int | None = None,
        limit: int = 500_000,
        workers: int | None = None,
        prepared_cache_size: int = 256,
    ):
        if instance is None:
            instance = Instance.empty()
        elif not isinstance(instance, Instance):
            instance = Instance(instance)
        self._instance = instance
        self._semantics = (
            get_semantics(semantics) if isinstance(semantics, str) else semantics
        )
        self._extra_facts = extra_facts
        self._workers = workers
        self.limit = limit
        self._generation = 0
        self._core_flag: bool | None = None
        # LRU intern table for textual queries, bounded so a long-lived
        # session serving ad-hoc query texts cannot grow without limit
        self._prepared: dict[tuple, PreparedQuery] = {}
        self._prepared_max = max(1, prepared_cache_size)
        # memo for the batch pool: (generation, extra constants) → pool
        # (a tuple, so backends cannot corrupt the cache in place)
        self._batch_pool_key: tuple | None = None
        self._batch_pool: tuple[Hashable, ...] | None = None

    # ------------------------------------------------------------------
    # state
    # ------------------------------------------------------------------

    @property
    def instance(self) -> Instance:
        """The current incomplete instance."""
        return self._instance

    @property
    def semantics(self) -> Semantics:
        """The session's default semantics."""
        return self._semantics

    @property
    def generation(self) -> int:
        """Bumped whenever cached plans could go stale; keys the prepared-query caches."""
        return self._generation

    @property
    def extra_facts(self) -> int | None:
        """Bound on extension facts for the oracle backends.

        Plans depend on this knob (it decides whether OWA/WCWA
        enumeration is exact), so assigning a new value invalidates
        the cached plans.
        """
        return self._extra_facts

    @extra_facts.setter
    def extra_facts(self, value: int | None) -> None:
        if value != self._extra_facts:
            self._extra_facts = value
            self._generation += 1

    @property
    def workers(self) -> int | None:
        """Ceiling on oracle worker processes (0/None = serial).

        Plans record the sharding decision, so assigning a new value
        invalidates the cached plans.
        """
        return self._workers

    @workers.setter
    def workers(self, value: int | None) -> None:
        if value != self._workers:
            self._workers = value
            self._generation += 1

    def instance_is_core(self) -> bool:
        """Is the current instance a core?  Cached until the next mutation."""
        if self._core_flag is None:
            self._core_flag = _homs_core.is_core(self._instance)
        return self._core_flag

    def _set_instance(self, new: Instance) -> None:
        if new != self._instance:
            self._instance = new
            self._generation += 1
            self._core_flag = None

    def replace(self, instance: Instance | Mapping[str, Iterable[tuple]]) -> None:
        """Swap in a whole new instance (invalidates cached plans/pools)."""
        if not isinstance(instance, Instance):
            instance = Instance(instance)
        self._set_instance(instance)

    def add_fact(self, relation: str, row: Sequence[Hashable]) -> None:
        """Add one fact (no-op when already present)."""
        self._set_instance(self._instance.add_fact(relation, tuple(row)))

    def remove_fact(self, relation: str, row: Sequence[Hashable]) -> None:
        """Remove one fact (no-op when absent)."""
        self._set_instance(self._instance.remove_fact(relation, tuple(row)))

    # ------------------------------------------------------------------
    # preparing queries
    # ------------------------------------------------------------------

    def query(
        self,
        source,
        vars: Sequence | None = None,
        *,
        semantics: Semantics | str | None = None,
        name: str | None = None,
    ) -> PreparedQuery:
        """Prepare a query for repeated evaluation against this session.

        ``source`` may be query text, a parsed ``Formula``, an
        already-built :class:`~repro.logic.queries.Query`, or a
        :class:`PreparedQuery` from this session (returned unchanged).
        ``vars`` fixes the answer-column order for text/formula sources;
        omitted, the free variables are used in name order.  Sources are
        interned in a bounded LRU table (size ``prepared_cache_size``):
        preparing the same text — or the same ``Query``/``Formula``
        value — twice returns the *same* prepared query, so its caches
        are shared.
        """
        if isinstance(source, PreparedQuery):
            if source.database is not self:
                raise ValueError("prepared query belongs to a different Database")
            if vars is not None:
                raise ValueError(
                    "vars cannot be overridden for an already-prepared query"
                )
            if name is not None:
                raise ValueError(
                    "name cannot be overridden for an already-prepared query"
                )
            if semantics is not None:
                wanted = (
                    get_semantics(semantics) if isinstance(semantics, str) else semantics
                )
                # identity, not key: two Semantics objects may share a key
                # yet expand differently
                if wanted is not source.semantics:
                    raise ValueError(
                        f"prepared query is bound to semantics "
                        f"{source.semantics.key!r}; re-prepare it for {wanted.key!r}"
                    )
            return source
        sem = self._semantics if semantics is None else (
            get_semantics(semantics) if isinstance(semantics, str) else semantics
        )
        # vars/name overrides on a Query source are rejected by as_query
        # below, before anything is inserted into the cache.
        # the semantics *object* (identity-hashed) keys the cache — a
        # custom Semantics sharing a registry key must not collide
        key = (source, tuple(vars) if vars is not None else None, name, sem)
        if not isinstance(source, str):
            try:
                hash(key)  # Query/Formula are usually hashable values
            except TypeError:
                return PreparedQuery(self, as_query(source, vars, name), sem)
        cached = self._prepared.pop(key, None)
        if cached is None:
            cached = PreparedQuery(self, as_query(source, vars, name), sem)
        self._prepared[key] = cached  # (re-)insert at the LRU tail
        while len(self._prepared) > self._prepared_max:
            self._prepared.pop(next(iter(self._prepared)))
        return cached

    prepare = query

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------

    def evaluate(self, source, vars: Sequence | None = None, *, mode: str = "auto",
                 semantics: Semantics | str | None = None) -> EvalResult:
        """One-shot convenience: prepare (or reuse) and evaluate."""
        return self.query(source, vars, semantics=semantics).evaluate(mode)

    def explain(self, source, vars: Sequence | None = None, *, mode: str = "auto",
                semantics: Semantics | str | None = None) -> Plan:
        """The structured :class:`Plan` for a query, without running it."""
        return self.query(source, vars, semantics=semantics).plan(mode)

    def evaluate_many(self, sources: Iterable, *, mode: str = "auto") -> list[EvalResult]:
        """Evaluate a batch, sharing pool construction and the core check.

        One constant pool is built covering the instance plus *every*
        query's constants (a superset pool keeps enumeration exact —
        it only enumerates more worlds), and the core check is computed
        at most once for the whole batch via the session cache.  Each
        result's ``stats`` reports its own planning/execution time plus
        ``batch=True`` and the shared pool size.
        """
        prepared = [self.query(s) for s in sources]
        if not prepared:
            return []
        planned: list[tuple[PreparedQuery, Plan, float]] = []
        for p in prepared:
            start = perf_counter()
            plan = p.plan(mode)  # cached per (generation, mode)
            planned.append((p, plan, perf_counter() - start))
        # one superset pool for the whole batch — but only when some
        # plan actually routes to a pool-reading backend
        shared_pool: tuple[Hashable, ...] | None = None
        pool_build = 0.0
        if any(_backends.get_backend(plan.backend).uses_pool for _, plan, _ in planned):
            extra: set[Hashable] = set()
            for p in prepared:
                extra |= set(p.query.constants())
            key = (self._generation, frozenset(extra))
            if self._batch_pool_key != key:
                start = perf_counter()
                self._batch_pool = tuple(
                    _certain.default_pool(self._instance, extra_constants=extra)
                )
                pool_build = perf_counter() - start
                self._batch_pool_key = key
            shared_pool = self._batch_pool
        results: list[EvalResult] = []
        for p, plan, planning in planned:
            results.append(
                _engine.execute_plan(
                    plan,
                    p.query,
                    self._instance,
                    p.semantics,
                    pool=shared_pool,
                    extra_facts=self.extra_facts,
                    limit=self.limit,
                    workers=self._workers,
                    stats={
                        "planning_s": planning,
                        # one-off cost of building the shared pool, reported
                        # on every result of the batch that paid it
                        "pool_build_s": pool_build,
                        "pool_size": (
                            len(shared_pool)
                            if shared_pool is not None
                            and _backends.get_backend(plan.backend).uses_pool
                            else 0
                        ),
                        "generation": self._generation,
                        "batch": True,
                    },
                )
            )
        return results

    def __repr__(self) -> str:
        return (
            f"Database({self._instance!r}, semantics={self._semantics.key!r}, "
            f"generation={self._generation})"
        )
